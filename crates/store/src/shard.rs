//! Hash→shard routing and the segmented storage engine.
//!
//! This module is the single home of the shard-routing policy: which hash
//! bits pick a segment, how many segments a requested count rounds to, and
//! how a global memory cap splits across segments without silently losing
//! the remainder. Both consumers build on it:
//!
//! * [`SegmentedStore`](crate::SegmentedStore) — plain `Vec<Store>` for the
//!   single-threaded simulation, where virtual-time locks (`simnet::vlock`)
//!   provide the serialization model;
//! * [`ShardedStore`](crate::ShardedStore) — `Mutex<Store>` per shard for
//!   wall-clock parallel use in stress tests and Criterion benches.

use crate::slab::{ClassId, ClassStats};
use crate::store::{
    hash_key, ItemLocation, NumericError, SetOutcome, SlabEvent, Store, StoreConfig, StoreStats,
    Value,
};

/// The hash→shard routing policy: a power-of-two shard count indexed by
/// the *upper* 16 hash bits, so the lower bits remain well distributed
/// for each shard's own bucket index.
#[derive(Clone, Copy, Debug)]
pub struct ShardRouter {
    mask: usize,
}

impl ShardRouter {
    /// A router over `shards` shards, rounded up to a power of two
    /// (minimum 1).
    pub fn new(shards: usize) -> ShardRouter {
        ShardRouter {
            mask: shards.max(1).next_power_of_two() - 1,
        }
    }

    /// Number of shards routed over.
    pub fn count(&self) -> usize {
        self.mask + 1
    }

    /// Shard index for a precomputed [`hash_key`] value.
    pub fn index_of_hash(&self, h: u64) -> usize {
        ((h >> 48) as usize) & self.mask
    }

    /// Shard index for `key`.
    pub fn index(&self, key: &[u8]) -> usize {
        self.index_of_hash(hash_key(key))
    }

    /// Splits a global memory cap across shards. The remainder is spread
    /// one byte per shard from the front so the shares sum back to
    /// `limit` exactly (no silent rounding loss); every share is then
    /// floored at `page_size` so each shard can hold at least one page.
    pub fn split_mem_limit(&self, limit: usize, page_size: usize) -> Vec<usize> {
        let n = self.count();
        let base = limit / n;
        let rem = limit % n;
        (0..n)
            .map(|i| (base + usize::from(i < rem)).max(page_size))
            .collect()
    }

    /// Per-shard [`StoreConfig`]s: the slab memory cap split by
    /// [`split_mem_limit`](ShardRouter::split_mem_limit), everything else
    /// copied. A single-shard router returns the config untouched.
    pub fn split_config(&self, config: StoreConfig) -> Vec<StoreConfig> {
        self.split_mem_limit(config.slab.mem_limit, config.slab.page_size)
            .into_iter()
            .map(|limit| {
                let mut c = config;
                c.slab.mem_limit = limit;
                c
            })
            .collect()
    }
}

/// [`Store`] split into hash-routed segments, single-threaded.
///
/// Every keyed operation routes through the shared [`ShardRouter`]; stats
/// and slab accounting aggregate across segments. With one segment this is
/// exactly a [`Store`] (same routing — everything lands in segment 0 —
/// and the full memory cap), which is what keeps the simulator's default
/// `Idealized` model bit-identical to the pre-sharding code.
pub struct SegmentedStore {
    segments: Vec<Store>,
    router: ShardRouter,
}

impl SegmentedStore {
    /// Creates `shards` (rounded up to a power of two) segments with the
    /// memory cap split losslessly across them.
    pub fn new(config: StoreConfig, shards: usize) -> SegmentedStore {
        let router = ShardRouter::new(shards);
        SegmentedStore {
            segments: router
                .split_config(config)
                .into_iter()
                .map(Store::new)
                .collect(),
            router,
        }
    }

    /// A single-segment store (the unsharded layout).
    pub fn single(config: StoreConfig) -> SegmentedStore {
        SegmentedStore::new(config, 1)
    }

    /// Number of segments.
    pub fn shard_count(&self) -> usize {
        self.segments.len()
    }

    /// The routing policy (shared with the wall-clock [`crate::ShardedStore`]).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Segment index owning `key`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.router.index(key)
    }

    /// Read access to one segment.
    pub fn segment(&self, i: usize) -> &Store {
        &self.segments[i]
    }

    /// Write access to one segment.
    pub fn segment_mut(&mut self, i: usize) -> &mut Store {
        &mut self.segments[i]
    }

    fn seg_for(&mut self, key: &[u8]) -> &mut Store {
        let i = self.router.index(key);
        &mut self.segments[i]
    }

    /// See [`Store::set`].
    pub fn set(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
        now: u32,
    ) -> SetOutcome {
        self.seg_for(key).set(key, value, flags, exptime, now)
    }

    /// See [`Store::add`].
    pub fn add(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
        now: u32,
    ) -> SetOutcome {
        self.seg_for(key).add(key, value, flags, exptime, now)
    }

    /// See [`Store::replace`].
    pub fn replace(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
        now: u32,
    ) -> SetOutcome {
        self.seg_for(key).replace(key, value, flags, exptime, now)
    }

    /// See [`Store::cas`].
    pub fn cas(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
        cas: u64,
        now: u32,
    ) -> SetOutcome {
        self.seg_for(key).cas(key, value, flags, exptime, cas, now)
    }

    /// See [`Store::append`].
    pub fn append(&mut self, key: &[u8], data: &[u8], now: u32) -> SetOutcome {
        self.seg_for(key).append(key, data, now)
    }

    /// See [`Store::prepend`].
    pub fn prepend(&mut self, key: &[u8], data: &[u8], now: u32) -> SetOutcome {
        self.seg_for(key).prepend(key, data, now)
    }

    /// See [`Store::get`].
    pub fn get(&mut self, key: &[u8], now: u32) -> Option<Value> {
        self.seg_for(key).get(key, now)
    }

    /// See [`Store::delete`].
    pub fn delete(&mut self, key: &[u8], now: u32) -> bool {
        self.seg_for(key).delete(key, now)
    }

    /// See [`Store::incr`].
    pub fn incr(&mut self, key: &[u8], delta: u64, now: u32) -> Result<u64, NumericError> {
        self.seg_for(key).incr(key, delta, now)
    }

    /// See [`Store::decr`].
    pub fn decr(&mut self, key: &[u8], delta: u64, now: u32) -> Result<u64, NumericError> {
        self.seg_for(key).decr(key, delta, now)
    }

    /// See [`Store::touch`].
    pub fn touch(&mut self, key: &[u8], exptime: u32, now: u32) -> bool {
        self.seg_for(key).touch(key, exptime, now)
    }

    /// Flushes every segment (see [`Store::flush_all`]).
    pub fn flush_all(&mut self, now: u32) {
        for s in &mut self.segments {
            s.flush_all(now);
        }
    }

    /// Aggregated statistics across segments.
    pub fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for s in &self.segments {
            total.merge(&s.stats());
        }
        total
    }

    /// Per-class eviction totals summed across segments.
    pub fn class_evictions(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.class_count()];
        for s in &self.segments {
            for (c, n) in s.class_evictions().iter().enumerate() {
                if let Some(slot) = out.get_mut(c) {
                    *slot += n;
                }
            }
        }
        out
    }

    /// Zeroes the operation counters on every segment.
    pub fn reset_stats(&mut self) {
        for s in &mut self.segments {
            s.reset_stats();
        }
    }

    /// Total live items across segments.
    pub fn curr_items(&self) -> u64 {
        self.segments.iter().map(Store::curr_items).sum()
    }

    /// Total bytes of stored values across segments.
    pub fn bytes_stored(&self) -> u64 {
        self.segments.iter().map(Store::bytes_stored).sum()
    }

    /// Number of slab classes (identical on every segment: the class
    /// table derives from the slab geometry, not the memory cap).
    pub fn class_count(&self) -> usize {
        self.segments[0].slabs().class_count()
    }

    /// Per-class slab occupancy summed across segments (`chunk_size` and
    /// `alloc_count` semantics follow [`ClassStats`]).
    pub fn class_stats(&self, class: ClassId) -> ClassStats {
        let mut total = ClassStats {
            chunk_size: self.segments[0].slabs().chunk_size(class) as u32,
            pages: 0,
            used: 0,
            free: 0,
            alloc_count: 0,
        };
        for s in &self.segments {
            let st = s.slabs().class_stats(class);
            total.pages += st.pages;
            total.used += st.used;
            total.free += st.free;
            total.alloc_count += st.alloc_count;
        }
        total
    }

    /// See [`Store::class_of`] (identical across segments).
    pub fn class_of(&self, key_len: usize, value_len: usize) -> Option<ClassId> {
        self.segments[0].class_of(key_len, value_len)
    }

    /// Enables (or disables) slab-event collection on every segment.
    pub fn set_event_tracking(&mut self, on: bool) {
        for s in &mut self.segments {
            s.set_event_tracking(on);
        }
    }

    /// Drains the slab events of every segment, tagged with the segment
    /// index so a bypass mirror can apply them to the right arena.
    pub fn take_slab_events(&mut self) -> Vec<(usize, Vec<SlabEvent>)> {
        let mut out = Vec::new();
        for (i, s) in self.segments.iter_mut().enumerate() {
            let evs = s.take_slab_events();
            if !evs.is_empty() {
                out.push((i, evs));
            }
        }
        out
    }

    /// Read-only item lookup for the bypass directory: the owning segment
    /// index plus the location inside that segment's slab arena (see
    /// [`Store::locate`]).
    pub fn locate(&self, key: &[u8], now: u32) -> Option<(usize, ItemLocation)> {
        let i = self.router.index(key);
        self.segments[i].locate(key, now).map(|loc| (i, loc))
    }

    /// `stats slabs`-style lines aggregated across segments; byte-identical
    /// to [`Store::slab_stat_lines`] for a single segment.
    pub fn slab_stat_lines(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for c in 0..self.class_count() {
            let st = self.class_stats(ClassId(c as u8));
            if st.pages == 0 {
                continue;
            }
            out.push((format!("{c}:chunk_size"), st.chunk_size.to_string()));
            out.push((format!("{c}:total_pages"), st.pages.to_string()));
            out.push((format!("{c}:used_chunks"), st.used.to_string()));
            out.push((format!("{c}:free_chunks"), st.free.to_string()));
        }
        out.push(("active_slabs".into(), out.len().to_string()));
        out
    }

    /// `stats items`-style lines aggregated across segments; byte-identical
    /// to [`Store::item_stat_lines`] for a single segment.
    pub fn item_stat_lines(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (c, evicted) in self.class_evictions().iter().enumerate() {
            let used = self.class_stats(ClassId(c as u8)).used;
            if used == 0 {
                continue;
            }
            out.push((format!("items:{c}:number"), used.to_string()));
            out.push((format!("items:{c}:evicted"), evicted.to_string()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;

    #[test]
    fn router_rounds_to_power_of_two() {
        assert_eq!(ShardRouter::new(0).count(), 1);
        assert_eq!(ShardRouter::new(1).count(), 1);
        assert_eq!(ShardRouter::new(3).count(), 4);
        assert_eq!(ShardRouter::new(16).count(), 16);
        assert_eq!(ShardRouter::new(17).count(), 32);
    }

    #[test]
    fn split_mem_limit_is_lossless() {
        let r = ShardRouter::new(8);
        // 1003 bytes over 8 shards with a 1-byte page floor: shares must
        // sum back to the global cap, remainder included.
        let shares = r.split_mem_limit(1003, 1);
        assert_eq!(shares.iter().sum::<usize>(), 1003);
        assert_eq!(
            shares.iter().max().unwrap() - shares.iter().min().unwrap(),
            1
        );
        // Tiny cap: the page floor dominates so every shard stays usable.
        let floored = r.split_mem_limit(4, 1024);
        assert!(floored.iter().all(|&s| s == 1024));
    }

    #[test]
    fn keys_spread_within_balance_bound() {
        let r = ShardRouter::new(16);
        let mut counts = vec![0usize; r.count()];
        let n_keys = 16_000;
        for i in 0..n_keys {
            counts[r.index(format!("key-{i}").as_bytes())] += 1;
        }
        let expect = n_keys / r.count();
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c > expect / 2 && c < expect * 2,
                "shard {s} holds {c} of {n_keys} keys (expected ~{expect})"
            );
        }
    }

    #[test]
    fn single_segment_matches_plain_store() {
        let cfg = StoreConfig::default();
        let mut seg = SegmentedStore::single(cfg);
        let mut plain = Store::new(cfg);
        for i in 0..200 {
            let k = format!("k{i}");
            let v = format!("value-{i}");
            assert_eq!(
                seg.set(k.as_bytes(), v.as_bytes(), 0, 0, 100),
                plain.set(k.as_bytes(), v.as_bytes(), 0, 0, 100)
            );
        }
        for i in 0..200 {
            let k = format!("k{i}");
            assert_eq!(seg.get(k.as_bytes(), 101), plain.get(k.as_bytes(), 101));
        }
        assert_eq!(seg.stats(), plain.stats());
        assert_eq!(seg.slab_stat_lines(), plain.slab_stat_lines());
        assert_eq!(seg.item_stat_lines(), plain.item_stat_lines());
        assert_eq!(seg.curr_items(), plain.curr_items());
        assert_eq!(seg.bytes_stored(), plain.bytes_stored());
    }

    #[test]
    fn routed_ops_land_on_owning_segment() {
        let mut seg = SegmentedStore::new(StoreConfig::default(), 4);
        for i in 0..64 {
            let k = format!("route-{i}");
            seg.set(k.as_bytes(), b"v", 0, 0, 100);
            let owner = seg.shard_of(k.as_bytes());
            // Only the owning segment can see the key.
            for s in 0..seg.shard_count() {
                let hit = seg.segment(s).locate(k.as_bytes(), 100).is_some();
                assert_eq!(hit, s == owner, "key {k} visible on segment {s}");
            }
        }
        assert_eq!(seg.stats().sets, 64);
        assert_eq!(seg.curr_items(), 64);
    }

    #[test]
    fn tagged_event_drain_per_segment() {
        let mut seg = SegmentedStore::new(StoreConfig::default(), 4);
        seg.set_event_tracking(true);
        seg.set(b"alpha", b"1", 0, 0, 100);
        seg.set(b"beta", b"2", 0, 0, 100);
        let drained = seg.take_slab_events();
        let touched: Vec<usize> = drained.iter().map(|(i, _)| *i).collect();
        assert!(touched.contains(&seg.shard_of(b"alpha")));
        assert!(touched.contains(&seg.shard_of(b"beta")));
        for (_, evs) in &drained {
            assert!(!evs.is_empty());
        }
        assert!(seg.take_slab_events().is_empty(), "drain must consume");
    }
}
