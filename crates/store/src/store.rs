//! The storage engine: items, hash table, LRU, and the memcached
//! operation set.
//!
//! Faithful to memcached 1.4.x semantics where they matter to the paper:
//!
//! * items live in slab chunks (`[key][value]`, plus a modeled 48-byte
//!   header counted toward the size class);
//! * a power-of-two chained hash table grows by **incremental expansion**
//!   (memcached's `assoc.c`): during an expansion, un-migrated buckets are
//!   still served from the old table and a fixed number of buckets migrate
//!   per operation, so no single request pays the full rehash;
//! * each slab class keeps its own LRU; allocation failure first reclaims
//!   expired items near the tail, then evicts the tail (memcached's
//!   behaviour with `-M` off);
//! * expiration is lazy (checked on access) with `flush_all` implemented
//!   as an `oldest_live` barrier;
//! * every mutation bumps a global CAS counter.
//!
//! All operations take an explicit `now` (unix seconds): the engine is
//! pure state — the simulation (or a wall-clock server) owns time.

use crate::slab::{ClassId, SlabAllocator, SlabConfig, SlabLoc};

/// Modeled per-item header bytes (memcached's `sizeof(item)` ballpark);
/// counted toward size-class selection.
pub const ITEM_HEADER_SIZE: usize = 48;

/// Maximum key length (memcached's `KEY_MAX_LENGTH`).
pub const MAX_KEY_LEN: usize = 250;

/// Seconds threshold below which an expiration time is relative
/// (memcached's `REALTIME_MAXDELTA`, 30 days).
pub const REALTIME_MAXDELTA: u32 = 60 * 60 * 24 * 30;

const NIL: u32 = u32::MAX;

/// FNV-1a, the hash family memcached shipped with.
pub fn hash_key(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Outcome of a storage command.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SetOutcome {
    /// Stored successfully.
    Stored,
    /// `add` on an existing key or `replace`/`append`/`prepend` on a
    /// missing one.
    NotStored,
    /// CAS mismatch: the item changed since `gets`.
    Exists,
    /// CAS on a key that no longer exists.
    NotFound,
    /// Item exceeds the largest slab chunk.
    TooLarge,
    /// Allocation failed and nothing was evictable.
    OutOfMemory,
}

/// Error from `incr`/`decr`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NumericError {
    /// Key not present.
    NotFound,
    /// Existing value is not an unsigned decimal integer.
    NotNumeric,
}

/// A fetched value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Value {
    /// The stored bytes.
    pub data: Vec<u8>,
    /// Client-opaque flags.
    pub flags: u32,
    /// CAS token for optimistic concurrency.
    pub cas: u64,
}

/// A chunk-level change notification for the bypass-get mirror (only
/// collected while [`Store::set_event_tracking`] is on). The version is
/// the chunk's seqlock version *after* the change; events are emitted in
/// mutation order, so replaying them keeps an external mirror exactly in
/// step with the slab contents.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SlabEvent {
    /// The chunk holds a (new or updated) live item.
    Written {
        /// Chunk that changed.
        loc: SlabLoc,
        /// Seqlock version after the write.
        version: u64,
    },
    /// The chunk's item died (delete / eviction / expiry / flush) or its
    /// chunk was reassigned; only the version word is meaningful now.
    Invalidated {
        /// Chunk that changed.
        loc: SlabLoc,
        /// Seqlock version after the invalidation.
        version: u64,
    },
}

impl SlabEvent {
    /// The chunk the event refers to.
    pub fn loc(&self) -> SlabLoc {
        match self {
            SlabEvent::Written { loc, .. } | SlabEvent::Invalidated { loc, .. } => *loc,
        }
    }
}

/// Where a live item sits in slab memory — the source of a bypass-get
/// location descriptor (`{rkey, offset, len, version}` once the server
/// maps it onto a registered mirror page).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ItemLocation {
    /// Slab chunk holding `[key][value]`.
    pub loc: SlabLoc,
    /// Key length in bytes.
    pub klen: u16,
    /// Value length in bytes.
    pub vlen: u32,
    /// Client-opaque flags.
    pub flags: u32,
    /// CAS token at lookup time.
    pub cas: u64,
    /// Absolute expiry (unix seconds); 0 = never.
    pub exp: u32,
    /// Chunk seqlock version at lookup time.
    pub version: u64,
}

/// Counters mirroring `stats` fields of interest.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct StoreStats {
    /// get hits.
    pub get_hits: u64,
    /// get misses.
    pub get_misses: u64,
    /// Storage commands accepted.
    pub sets: u64,
    /// Items evicted live to make room.
    pub evictions: u64,
    /// Expired items lazily reclaimed.
    pub reclaimed: u64,
    /// delete hits.
    pub delete_hits: u64,
    /// delete misses.
    pub delete_misses: u64,
    /// CAS stores that matched.
    pub cas_hits: u64,
    /// CAS stores that mismatched.
    pub cas_badval: u64,
    /// incr/decr hits.
    pub incr_hits: u64,
    /// Total items ever stored.
    pub total_items: u64,
    /// Hash-table expansions completed.
    pub hash_expansions: u64,
}

impl StoreStats {
    /// Accumulates another stats block into this one (shard aggregation).
    pub fn merge(&mut self, other: &StoreStats) {
        self.get_hits += other.get_hits;
        self.get_misses += other.get_misses;
        self.sets += other.sets;
        self.evictions += other.evictions;
        self.reclaimed += other.reclaimed;
        self.delete_hits += other.delete_hits;
        self.delete_misses += other.delete_misses;
        self.cas_hits += other.cas_hits;
        self.cas_badval += other.cas_badval;
        self.incr_hits += other.incr_hits;
        self.total_items += other.total_items;
        self.hash_expansions += other.hash_expansions;
    }
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Slab allocator settings.
    pub slab: SlabConfig,
    /// log2 of the initial bucket count (memcached default 16).
    pub hashpower: u32,
    /// Buckets migrated per operation during an expansion.
    pub migrate_per_op: usize,
    /// Evict on memory pressure (memcached default; `-M` turns it off).
    pub evict_on_full: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            slab: SlabConfig::default(),
            hashpower: 16,
            migrate_per_op: 4,
            evict_on_full: true,
        }
    }
}

struct ItemSlot {
    in_use: bool,
    loc: SlabLoc,
    hash: u64,
    klen: u16,
    vlen: u32,
    flags: u32,
    /// Absolute expiry (unix seconds); 0 = never.
    exp: u32,
    stored_at: u32,
    cas: u64,
    h_next: u32,
    lru_prev: u32,
    lru_next: u32,
}

/// The single-threaded storage engine. See the module docs.
pub struct Store {
    slabs: SlabAllocator,
    items: Vec<ItemSlot>,
    free_items: Vec<u32>,
    buckets: Vec<u32>,
    old_buckets: Vec<u32>,
    expanding: bool,
    expand_pos: usize,
    lru_head: Vec<u32>,
    lru_tail: Vec<u32>,
    cas_counter: u64,
    oldest_live: u32,
    item_count: u64,
    bytes_stored: u64,
    config: StoreConfig,
    stats: StoreStats,
    evictions_by_class: Vec<u64>,
    /// Chunk-change events for the bypass mirror; only filled while
    /// `track_events` is on (i.e. a bypass client exists).
    events: Vec<SlabEvent>,
    track_events: bool,
}

impl Store {
    /// Creates an empty store.
    pub fn new(config: StoreConfig) -> Store {
        let slabs = SlabAllocator::new(config.slab);
        let classes = slabs.class_count();
        Store {
            slabs,
            items: Vec::new(),
            free_items: Vec::new(),
            buckets: vec![NIL; 1 << config.hashpower],
            old_buckets: Vec::new(),
            expanding: false,
            expand_pos: 0,
            lru_head: vec![NIL; classes],
            lru_tail: vec![NIL; classes],
            cas_counter: 0,
            oldest_live: 0,
            item_count: 0,
            bytes_stored: 0,
            config,
            stats: StoreStats::default(),
            evictions_by_class: vec![0; classes],
            events: Vec::new(),
            track_events: false,
        }
    }

    /// Creates a store with default settings.
    pub fn with_defaults() -> Store {
        Store::new(StoreConfig::default())
    }

    // ------------------------------------------------------------------
    // Public operations
    // ------------------------------------------------------------------

    /// Unconditional store.
    pub fn set(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
        now: u32,
    ) -> SetOutcome {
        let exp = normalize_exptime(exptime, now);
        self.store_item(key, value, flags, exp, now, StorePolicy::Set)
    }

    /// Store only if absent.
    pub fn add(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
        now: u32,
    ) -> SetOutcome {
        let exp = normalize_exptime(exptime, now);
        self.store_item(key, value, flags, exp, now, StorePolicy::Add)
    }

    /// Store only if present.
    pub fn replace(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
        now: u32,
    ) -> SetOutcome {
        let exp = normalize_exptime(exptime, now);
        self.store_item(key, value, flags, exp, now, StorePolicy::Replace)
    }

    /// Compare-and-store against a CAS token from `get`.
    pub fn cas(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
        cas: u64,
        now: u32,
    ) -> SetOutcome {
        let exp = normalize_exptime(exptime, now);
        self.store_item(key, value, flags, exp, now, StorePolicy::Cas(cas))
    }

    /// Appends `data` to an existing value.
    pub fn append(&mut self, key: &[u8], data: &[u8], now: u32) -> SetOutcome {
        self.concat(key, data, now, true)
    }

    /// Prepends `data` to an existing value.
    pub fn prepend(&mut self, key: &[u8], data: &[u8], now: u32) -> SetOutcome {
        self.concat(key, data, now, false)
    }

    /// Fetches a value (bumps LRU; reclaims if expired).
    pub fn get(&mut self, key: &[u8], now: u32) -> Option<Value> {
        self.maintain();
        match self.lookup_live(key, now) {
            Some(id) => {
                self.stats.get_hits += 1;
                self.lru_bump(id);
                let it = &self.items[id as usize];
                let data = self
                    .slabs
                    .read(it.loc, it.klen as usize, it.vlen as usize)
                    .to_vec();
                Some(Value {
                    data,
                    flags: it.flags,
                    cas: it.cas,
                })
            }
            None => {
                self.stats.get_misses += 1;
                None
            }
        }
    }

    /// Removes a key. True if it existed (and was live).
    pub fn delete(&mut self, key: &[u8], now: u32) -> bool {
        self.maintain();
        match self.lookup_live(key, now) {
            Some(id) => {
                self.stats.delete_hits += 1;
                self.remove_item(id);
                true
            }
            None => {
                self.stats.delete_misses += 1;
                false
            }
        }
    }

    /// Arithmetic increment; wraps at `u64::MAX` like memcached.
    pub fn incr(&mut self, key: &[u8], delta: u64, now: u32) -> Result<u64, NumericError> {
        self.arith(key, delta, now, true)
    }

    /// Arithmetic decrement; clamps at zero like memcached.
    pub fn decr(&mut self, key: &[u8], delta: u64, now: u32) -> Result<u64, NumericError> {
        self.arith(key, delta, now, false)
    }

    /// Updates expiry without touching the value.
    pub fn touch(&mut self, key: &[u8], exptime: u32, now: u32) -> bool {
        self.maintain();
        let exp = normalize_exptime(exptime, now);
        match self.lookup_live(key, now) {
            Some(id) => {
                self.items[id as usize].exp = exp;
                self.lru_bump(id);
                // The item's descriptor (which carries the expiry) is now
                // stale: advance the version so bypass readers refetch.
                let loc = self.items[id as usize].loc;
                let version = self.slabs.bump_version(loc);
                self.emit(SlabEvent::Written { loc, version });
                true
            }
            None => false,
        }
    }

    /// Invalidates everything stored strictly before `now`.
    pub fn flush_all(&mut self, now: u32) {
        self.oldest_live = now;
        if self.track_events {
            // Reclamation stays lazy, but bypass readers must stop trusting
            // cached descriptors immediately: bump every flushed item's
            // chunk version so direct reads observe the skew.
            for id in 0..self.items.len() {
                let it = &self.items[id];
                if it.in_use && it.stored_at < now {
                    let loc = it.loc;
                    let version = self.slabs.bump_version(loc);
                    self.emit(SlabEvent::Invalidated { loc, version });
                }
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Items evicted live from each slab class, indexed by class id (the
    /// per-class split of [`StoreStats::evictions`]).
    pub fn class_evictions(&self) -> &[u64] {
        &self.evictions_by_class
    }

    /// Zeroes the operation counters (`stats reset` semantics). Level
    /// state — stored items, slab pages, LRU order — is untouched: only
    /// the accounting restarts.
    pub fn reset_stats(&mut self) {
        self.stats = StoreStats::default();
        self.evictions_by_class.iter_mut().for_each(|e| *e = 0);
    }

    /// Live item count (may include not-yet-reclaimed expired items).
    pub fn curr_items(&self) -> u64 {
        self.item_count
    }

    /// Bytes of key+value payload currently stored.
    pub fn bytes_stored(&self) -> u64 {
        self.bytes_stored
    }

    /// Current hash-table bucket count.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// True while an incremental expansion is in progress.
    pub fn is_expanding(&self) -> bool {
        self.expanding
    }

    /// The slab allocator (stats inspection).
    pub fn slabs(&self) -> &SlabAllocator {
        &self.slabs
    }

    /// The slab class an item of this shape lands in, using the same
    /// sizing formula as [`store_item`](Store::store_item) — lets
    /// observers (the workload observatory's per-class read/write mix)
    /// classify traffic exactly as the allocator would place it.
    pub fn class_of(&self, key_len: usize, value_len: usize) -> Option<ClassId> {
        self.slabs.class_for(ITEM_HEADER_SIZE + key_len + value_len)
    }

    /// Enables (or disables) chunk-change event collection for the bypass
    /// mirror. Off by default; the server flips it on when the first
    /// bypass client asks for a location descriptor.
    pub fn set_event_tracking(&mut self, on: bool) {
        self.track_events = on;
        if !on {
            self.events.clear();
        }
    }

    /// Drains the chunk-change events accumulated since the last call.
    pub fn take_slab_events(&mut self) -> Vec<SlabEvent> {
        std::mem::take(&mut self.events)
    }

    /// Read-only item lookup for the bypass directory: where a live item
    /// sits in slab memory plus its current seqlock version. Unlike
    /// [`get`](Store::get) this neither bumps the LRU nor reclaims expired
    /// items nor counts a hit/miss — serving a descriptor is not a cache
    /// access, and the directory handler runs outside the worker path.
    pub fn locate(&self, key: &[u8], now: u32) -> Option<ItemLocation> {
        let id = self.lookup(key)?;
        if self.is_dead(id, now) {
            return None;
        }
        let it = &self.items[id as usize];
        Some(ItemLocation {
            loc: it.loc,
            klen: it.klen,
            vlen: it.vlen,
            flags: it.flags,
            cas: it.cas,
            exp: it.exp,
            version: self.slabs.version(it.loc),
        })
    }

    fn emit(&mut self, ev: SlabEvent) {
        if self.track_events {
            self.events.push(ev);
        }
    }

    /// `stats slabs`-style lines: one `(name, value)` pair per populated
    /// class, mirroring memcached's `STAT <class>:<field> <value>` layout.
    pub fn slab_stat_lines(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for c in 0..self.slabs.class_count() {
            let st = self.slabs.class_stats(ClassId(c as u8));
            if st.pages == 0 {
                continue;
            }
            out.push((format!("{c}:chunk_size"), st.chunk_size.to_string()));
            out.push((format!("{c}:total_pages"), st.pages.to_string()));
            out.push((format!("{c}:used_chunks"), st.used.to_string()));
            out.push((format!("{c}:free_chunks"), st.free.to_string()));
        }
        out.push(("active_slabs".into(), out.len().to_string()));
        out
    }

    /// `stats items`-style lines: per-class live item counts and the age
    /// proxy memcached reports (here: the tail key's presence).
    pub fn item_stat_lines(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for c in 0..self.slabs.class_count() {
            let class = ClassId(c as u8);
            let used = self.slabs.class_stats(class).used;
            if used == 0 {
                continue;
            }
            out.push((format!("items:{c}:number"), used.to_string()));
            out.push((
                format!("items:{c}:evicted"),
                self.evictions_by_class[c].to_string(),
            ));
        }
        out
    }

    // ------------------------------------------------------------------
    // Store / concat / arithmetic internals
    // ------------------------------------------------------------------

    /// Core store. `exp_abs` is an already-normalized absolute expiry
    /// (0 = never) — callers from the protocol surface normalize; internal
    /// re-stores (concat, arithmetic) pass the item's existing expiry
    /// through unchanged.
    fn store_item(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exp_abs: u32,
        now: u32,
        policy: StorePolicy,
    ) -> SetOutcome {
        self.maintain();
        if key.is_empty() || key.len() > MAX_KEY_LEN {
            return SetOutcome::NotStored;
        }
        let need = ITEM_HEADER_SIZE + key.len() + value.len();
        let Some(class) = self.slabs.class_for(need) else {
            return SetOutcome::TooLarge;
        };
        let existing = self.lookup_live(key, now);
        match policy {
            StorePolicy::Add if existing.is_some() => return SetOutcome::NotStored,
            StorePolicy::Replace if existing.is_none() => return SetOutcome::NotStored,
            StorePolicy::Cas(_) if existing.is_none() => {
                return SetOutcome::NotFound;
            }
            StorePolicy::Cas(expected) => {
                let id = existing.expect("checked above");
                if self.items[id as usize].cas != expected {
                    self.stats.cas_badval += 1;
                    return SetOutcome::Exists;
                }
                self.stats.cas_hits += 1;
            }
            _ => {}
        }

        // Out with the old (memcached stores a fresh item and unlinks the
        // previous one rather than updating in place).
        if let Some(id) = existing {
            self.remove_item(id);
        }
        let Some(loc) = self.alloc_with_eviction(class, now) else {
            return SetOutcome::OutOfMemory;
        };
        let id = self.alloc_slot();
        let hash = hash_key(key);
        self.cas_counter += 1;
        self.slabs.write(loc, 0, key);
        self.slabs.write(loc, key.len(), value);
        {
            let slot = &mut self.items[id as usize];
            slot.in_use = true;
            slot.loc = loc;
            slot.hash = hash;
            slot.klen = key.len() as u16;
            slot.vlen = value.len() as u32;
            slot.flags = flags;
            slot.exp = exp_abs;
            slot.stored_at = now;
            slot.cas = self.cas_counter;
            slot.h_next = NIL;
            slot.lru_prev = NIL;
            slot.lru_next = NIL;
        }
        self.hash_insert(id);
        self.lru_push_front(id);
        self.item_count += 1;
        self.bytes_stored += (key.len() + value.len()) as u64;
        self.stats.sets += 1;
        self.stats.total_items += 1;
        let version = self.slabs.bump_version(loc);
        self.emit(SlabEvent::Written { loc, version });
        SetOutcome::Stored
    }

    fn concat(&mut self, key: &[u8], data: &[u8], now: u32, append: bool) -> SetOutcome {
        self.maintain();
        let Some(id) = self.lookup_live(key, now) else {
            return SetOutcome::NotStored;
        };
        let it = &self.items[id as usize];
        let old = self
            .slabs
            .read(it.loc, it.klen as usize, it.vlen as usize)
            .to_vec();
        let (flags, exp_abs) = (it.flags, it.exp);
        let mut newval = Vec::with_capacity(old.len() + data.len());
        if append {
            newval.extend_from_slice(&old);
            newval.extend_from_slice(data);
        } else {
            newval.extend_from_slice(data);
            newval.extend_from_slice(&old);
        }
        // Re-store with the item's absolute expiry preserved.
        match self.store_item(key, &newval, flags, exp_abs, now, StorePolicy::Set) {
            SetOutcome::Stored => SetOutcome::Stored,
            other => other,
        }
    }

    fn arith(&mut self, key: &[u8], delta: u64, now: u32, up: bool) -> Result<u64, NumericError> {
        self.maintain();
        let Some(id) = self.lookup_live(key, now) else {
            return Err(NumericError::NotFound);
        };
        let it = &self.items[id as usize];
        let raw = self.slabs.read(it.loc, it.klen as usize, it.vlen as usize);
        let text = std::str::from_utf8(raw).map_err(|_| NumericError::NotNumeric)?;
        let cur: u64 = text.trim().parse().map_err(|_| NumericError::NotNumeric)?;
        let newv = if up {
            cur.wrapping_add(delta)
        } else {
            cur.saturating_sub(delta)
        };
        let text = newv.to_string();
        let (flags, exp_abs, loc, klen, old_vlen) = {
            let it = &self.items[id as usize];
            (it.flags, it.exp, it.loc, it.klen as usize, it.vlen as usize)
        };
        self.stats.incr_hits += 1;
        if text.len() <= old_vlen {
            // Fits in place (memcached pads shorter numbers by rewriting
            // the length).
            self.slabs.write(loc, klen, text.as_bytes());
            self.cas_counter += 1;
            let it = &mut self.items[id as usize];
            self.bytes_stored -= (old_vlen - text.len()) as u64;
            it.vlen = text.len() as u32;
            it.cas = self.cas_counter;
            let version = self.slabs.bump_version(loc);
            self.emit(SlabEvent::Written { loc, version });
            Ok(newv)
        } else {
            match self.store_item(key, text.as_bytes(), flags, exp_abs, now, StorePolicy::Set) {
                SetOutcome::Stored => Ok(newv),
                _ => Err(NumericError::NotFound),
            }
        }
    }

    // ------------------------------------------------------------------
    // Allocation / eviction
    // ------------------------------------------------------------------

    fn alloc_with_eviction(&mut self, class: ClassId, now: u32) -> Option<SlabLoc> {
        if let Some(loc) = self.slabs.alloc(class) {
            return Some(loc);
        }
        if !self.config.evict_on_full {
            return None;
        }
        // Walk up to 5 items from the LRU tail looking for expired ones to
        // reclaim first (memcached's tail scan), else evict the tail.
        for _ in 0..5 {
            let tail = self.lru_tail[class.0 as usize];
            if tail == NIL {
                return None;
            }
            let expired = self.is_dead(tail, now);
            if expired {
                self.stats.reclaimed += 1;
            } else {
                self.stats.evictions += 1;
                self.evictions_by_class[class.0 as usize] += 1;
            }
            self.remove_item(tail);
            if let Some(loc) = self.slabs.alloc(class) {
                return Some(loc);
            }
        }
        None
    }

    fn alloc_slot(&mut self) -> u32 {
        if let Some(id) = self.free_items.pop() {
            return id;
        }
        let id = self.items.len() as u32;
        self.items.push(ItemSlot {
            in_use: false,
            // Placeholder: overwritten by the caller right away.
            loc: SlabLoc::placeholder(),
            hash: 0,
            klen: 0,
            vlen: 0,
            flags: 0,
            exp: 0,
            stored_at: 0,
            cas: 0,
            h_next: NIL,
            lru_prev: NIL,
            lru_next: NIL,
        });
        id
    }

    fn remove_item(&mut self, id: u32) {
        self.hash_unlink(id);
        self.lru_unlink(id);
        let it = &mut self.items[id as usize];
        debug_assert!(it.in_use);
        it.in_use = false;
        self.item_count -= 1;
        self.bytes_stored -= (it.klen as u64) + (it.vlen as u64);
        let loc = it.loc;
        let version = self.slabs.bump_version(loc);
        self.emit(SlabEvent::Invalidated { loc, version });
        self.slabs.free(loc);
        self.free_items.push(id);
    }

    // ------------------------------------------------------------------
    // Hash table with incremental expansion
    // ------------------------------------------------------------------

    fn bucket_index(&self, hash: u64) -> (bool, usize) {
        if self.expanding {
            let old_idx = (hash as usize) & (self.old_buckets.len() - 1);
            if old_idx >= self.expand_pos {
                return (true, old_idx);
            }
        }
        (false, (hash as usize) & (self.buckets.len() - 1))
    }

    fn hash_insert(&mut self, id: u32) {
        let hash = self.items[id as usize].hash;
        let (in_old, idx) = self.bucket_index(hash);
        let head = if in_old {
            &mut self.old_buckets[idx]
        } else {
            &mut self.buckets[idx]
        };
        self.items[id as usize].h_next = *head;
        *head = id;
        self.maybe_start_expansion();
    }

    fn hash_unlink(&mut self, id: u32) {
        let hash = self.items[id as usize].hash;
        let (in_old, idx) = self.bucket_index(hash);
        let mut cur = if in_old {
            self.old_buckets[idx]
        } else {
            self.buckets[idx]
        };
        if cur == id {
            let next = self.items[id as usize].h_next;
            if in_old {
                self.old_buckets[idx] = next;
            } else {
                self.buckets[idx] = next;
            }
            return;
        }
        while cur != NIL {
            let next = self.items[cur as usize].h_next;
            if next == id {
                self.items[cur as usize].h_next = self.items[id as usize].h_next;
                return;
            }
            cur = next;
        }
        debug_assert!(false, "unlinking an item that is not in its bucket");
    }

    fn lookup(&self, key: &[u8]) -> Option<u32> {
        let hash = hash_key(key);
        let (in_old, idx) = self.bucket_index(hash);
        let mut cur = if in_old {
            self.old_buckets[idx]
        } else {
            self.buckets[idx]
        };
        while cur != NIL {
            let it = &self.items[cur as usize];
            if it.hash == hash {
                let stored = self.slabs.read(it.loc, 0, it.klen as usize);
                if stored == key {
                    return Some(cur);
                }
            }
            cur = it.h_next;
        }
        None
    }

    /// Lookup that lazily reclaims dead (expired / flushed) items.
    fn lookup_live(&mut self, key: &[u8], now: u32) -> Option<u32> {
        let id = self.lookup(key)?;
        if self.is_dead(id, now) {
            self.stats.reclaimed += 1;
            self.remove_item(id);
            return None;
        }
        Some(id)
    }

    fn is_dead(&self, id: u32, now: u32) -> bool {
        let it = &self.items[id as usize];
        (it.exp != 0 && it.exp <= now) || (self.oldest_live != 0 && it.stored_at < self.oldest_live)
    }

    fn maybe_start_expansion(&mut self) {
        if self.expanding {
            return;
        }
        if self.item_count <= (self.buckets.len() as u64 * 3) / 2 {
            return;
        }
        let new_size = self.buckets.len() * 2;
        self.old_buckets = std::mem::replace(&mut self.buckets, vec![NIL; new_size]);
        self.expanding = true;
        self.expand_pos = 0;
    }

    /// Incremental maintenance: migrate a few buckets per operation.
    fn maintain(&mut self) {
        if !self.expanding {
            return;
        }
        for _ in 0..self.config.migrate_per_op {
            if self.expand_pos >= self.old_buckets.len() {
                self.expanding = false;
                self.old_buckets = Vec::new();
                self.stats.hash_expansions += 1;
                return;
            }
            let mut cur = self.old_buckets[self.expand_pos];
            self.old_buckets[self.expand_pos] = NIL;
            // Must advance before re-inserting so bucket_index routes the
            // migrated items into the new table.
            self.expand_pos += 1;
            while cur != NIL {
                let next = self.items[cur as usize].h_next;
                let hash = self.items[cur as usize].hash;
                let idx = (hash as usize) & (self.buckets.len() - 1);
                self.items[cur as usize].h_next = self.buckets[idx];
                self.buckets[idx] = cur;
                cur = next;
            }
        }
    }

    // ------------------------------------------------------------------
    // LRU
    // ------------------------------------------------------------------

    fn lru_push_front(&mut self, id: u32) {
        let class = self.items[id as usize].loc.class.0 as usize;
        let head = self.lru_head[class];
        self.items[id as usize].lru_prev = NIL;
        self.items[id as usize].lru_next = head;
        if head != NIL {
            self.items[head as usize].lru_prev = id;
        }
        self.lru_head[class] = id;
        if self.lru_tail[class] == NIL {
            self.lru_tail[class] = id;
        }
    }

    fn lru_unlink(&mut self, id: u32) {
        let class = self.items[id as usize].loc.class.0 as usize;
        let (prev, next) = {
            let it = &self.items[id as usize];
            (it.lru_prev, it.lru_next)
        };
        if prev != NIL {
            self.items[prev as usize].lru_next = next;
        } else {
            self.lru_head[class] = next;
        }
        if next != NIL {
            self.items[next as usize].lru_prev = prev;
        } else {
            self.lru_tail[class] = prev;
        }
        self.items[id as usize].lru_prev = NIL;
        self.items[id as usize].lru_next = NIL;
    }

    fn lru_bump(&mut self, id: u32) {
        self.lru_unlink(id);
        self.lru_push_front(id);
    }

    /// The key at the LRU tail of `class` (tests/diagnostics).
    pub fn lru_tail_key(&self, class: ClassId) -> Option<Vec<u8>> {
        let tail = self.lru_tail[class.0 as usize];
        if tail == NIL {
            return None;
        }
        let it = &self.items[tail as usize];
        Some(self.slabs.read(it.loc, 0, it.klen as usize).to_vec())
    }
}

#[derive(Clone, Copy)]
enum StorePolicy {
    Set,
    Add,
    Replace,
    Cas(u64),
}

/// Normalizes a protocol expiration time to an absolute unix second:
/// 0 stays "never"; values up to 30 days are relative to `now`; larger
/// values are already absolute (memcached's `realtime()`).
pub fn normalize_exptime(exptime: u32, now: u32) -> u32 {
    if exptime == 0 {
        0
    } else if exptime <= REALTIME_MAXDELTA {
        now + exptime
    } else {
        exptime
    }
}
