//! # rmc — RDMA-capable Memcached (the paper's system, §V)
//!
//! The complete Memcached of Jose et al. (ICPP 2011): a server that keeps
//! the upstream libevent + worker-thread architecture while serving both
//! classic sockets clients (ASCII protocol over SDP / IPoIB / 10GigE-TOE /
//! 1GigE) and UCR clients (typed active messages over InfiniBand verbs),
//! plus a libmemcached-style client library that runs the same API over
//! either family. `set` and `get` follow the paper's flows exactly: the
//! client names a counter in AM 1, the server stores/fetches through the
//! slab engine and answers with AM 2 targeting that counter, using RDMA
//! read rendezvous for values past the 8 KB eager buffer.
//!
//! ```
//! use rmc::{McClient, McClientConfig, McServer, McServerConfig, Transport, World};
//! use simnet::NodeId;
//!
//! let world = World::cluster_b(42, 4);
//! let server = McServer::start(&world, NodeId(0), McServerConfig::default());
//! let client = McClient::new(
//!     &world,
//!     NodeId(1),
//!     McClientConfig::single(Transport::Ucr, NodeId(0)),
//! );
//! let hit = world.sim().block_on(async move {
//!     client.set(b"user:42", b"arthur", 0, 0).await.unwrap();
//!     client.get(b"user:42").await.unwrap()
//! });
//! assert_eq!(hit.unwrap().data, b"arthur");
//! assert_eq!(server.curr_items(), 1);
//! ```

#![warn(missing_docs)]

mod am_wire;
mod client;
mod observatory;
mod server;
mod world;

pub use am_wire::{
    decode_mget_entries, encode_mget_entry, McOp, ReqHeader, RespHeader, RespStatus, MSG_MC_REQ,
    MSG_MC_RESP,
};
pub use client::{
    crc32, fnv1a_32, one_at_a_time, Distribution, InFlightGet, InFlightSet, KeyHash, McClient,
    McClientConfig, McError, Transport,
};
pub use observatory::{ObservatoryConfig, SloObjective, WorkloadObservatory};
pub use server::{McServer, McServerConfig, SrvStats, StoreModel, BASE_UNIX_TIME, SERVER_VERSION};
pub use world::World;

pub use mcstore::Value;
