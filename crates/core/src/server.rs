//! The Memcached server (paper §V).
//!
//! One server process per node, preserving the upstream architecture the
//! paper extends: an event-driven dispatcher accepts connections and hands
//! each one to a **worker thread in round-robin order**; that worker then
//! serves every request of the connection. Both client families are served
//! concurrently by the same process:
//!
//! * **Sockets clients** speak the ASCII protocol over any of the
//!   byte-stream transports (the unmodified baseline);
//! * **UCR clients** speak typed active messages: the request's header
//!   handler runs in the UCR progress engine and enqueues work to the
//!   connection's worker; the worker executes against the store and
//!   responds with AM 2 targeting the counter named in AM 1 (§V-B, §V-C).
//!
//! Workers are simulated threads: each occupies itself for the service
//! time of a request, which is what caps server throughput in Figure 6.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::{Rc, Weak};

use mcproto::{
    encode_response, parse_command, udp_fragment, BinFrame, BinOpcode, BinStatus, Command,
    GetValue, Response, StoreVerb, UdpFrame, MAGIC_REQUEST,
};
use mcstore::{
    ClassId, NumericError, SegmentedStore, SetOutcome, ShardRouter, SlabAllocator, SlabEvent,
    Store, StoreConfig,
};
use simnet::metrics::{Histogram, LatencySpans, Metrics, Stage};
use simnet::sync::{self, Receiver, Sender};
use simnet::trace::{Layer, Track};
use simnet::vlock::{VLock, VLockGuard, VLockMeters};
use simnet::{NodeId, Sim, SimDuration, Stack, Tracer};
use socksim::DgramSocket;
use socksim::Socket;
use ucr::{AmData, AmHandler, Endpoint, SendOptions, UcrMemory, UcrRuntime};

use crate::am_wire::{
    encode_mget_entry, DirReq, DirResp, McOp, ReqHeader, RespHeader, RespStatus,
    BYPASS_VERSION_BYTES, MSG_MC_DIR_REQ, MSG_MC_DIR_RESP, MSG_MC_REQ, MSG_MC_RESP,
};
use crate::observatory::{ObservatoryConfig, WorkloadObservatory};
use crate::world::World;

/// Simulated epoch: the store's unix clock starts here (spring 2011).
pub const BASE_UNIX_TIME: u32 = 1_300_000_000;

/// Version string the server reports.
pub const SERVER_VERSION: &str = "1.4.5-rmc";

/// How store access is serialized across workers (paper §V-A).
///
/// Upstream memcached wraps the whole cache — hash table, LRU, slab
/// allocator — in one global `cache_lock`; adding worker threads past the
/// point where that lock saturates buys nothing (the flat curves of
/// Figure 6's multi-worker runs). The simulation can model that lock, or
/// idealize it away, or replace it with hash-routed segments the way
/// later memcached/scaling work does.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StoreModel {
    /// Store access costs CPU time but never contends: the historical
    /// model every existing experiment was run under. The default —
    /// schedules are bit-identical to pre-`StoreModel` builds.
    #[default]
    Idealized,
    /// One virtual-time lock serializes the hash/item portion of every
    /// request's service time across all workers, reproducing upstream
    /// memcached's flat worker-scaling curve.
    GlobalLock,
    /// The store is split into this many hash-routed segments (rounded up
    /// to a power of two), each with its own lock, slab arena, and stat
    /// counters. UCR dispatch routes requests to workers by key-hash
    /// shard affinity so a shard's lock is only ever contended when
    /// shards outnumber workers.
    Sharded(usize),
}

/// Server configuration.
#[derive(Clone)]
pub struct McServerConfig {
    /// Service port for all transports (memcached's 11211).
    pub port: u16,
    /// Worker threads (memcached `-t`, paper uses a runtime parameter).
    pub workers: usize,
    /// Storage engine settings.
    pub store: StoreConfig,
    /// Accept UCR (RDMA) clients over native InfiniBand.
    pub enable_ucr: bool,
    /// Accept UCR clients over RoCE too, when the cluster's Ethernet
    /// adapters support it (paper SVII future work).
    pub enable_roce: bool,
    /// Byte-stream transports to listen on.
    pub socket_stacks: Vec<Stack>,
    /// Also serve the memcached UDP protocol on the same stacks (the
    /// SIII Facebook baseline: connection-less gets).
    pub enable_udp: bool,
    /// Attach a workload observatory (hot-key sketch, tail exemplars,
    /// SLO tracking; surfaced via `stats hot`/`stats slo`/
    /// `stats exemplars`). `None` — the default — registers nothing and
    /// keeps every stats surface byte-identical to an unobserved server.
    pub observatory: Option<ObservatoryConfig>,
    /// Lock-contention model for store access. [`StoreModel::Idealized`]
    /// (the default) registers no locks and no shard metrics, keeping
    /// every schedule and stats surface byte-identical to earlier builds.
    pub store_model: StoreModel,
}

impl Default for McServerConfig {
    fn default() -> Self {
        McServerConfig {
            port: 11211,
            workers: 4,
            store: StoreConfig::default(),
            enable_ucr: true,
            enable_roce: true,
            socket_stacks: vec![Stack::Sdp, Stack::Ipoib, Stack::TenGigEToe, Stack::OneGigE],
            enable_udp: true,
            observatory: None,
            store_model: StoreModel::default(),
        }
    }
}

/// Server-level counters.
#[derive(Default)]
pub struct SrvStats {
    /// Connections accepted (all transports).
    pub connections: Cell<u64>,
    /// Requests served over UCR.
    pub ucr_requests: Cell<u64>,
    /// Requests served over sockets.
    pub sock_requests: Cell<u64>,
}

enum WorkItem {
    Ucr {
        ep: Endpoint,
        req: ReqHeader,
        data: Vec<u8>,
    },
    /// One shard's slice of a multi-shard `Mget`, routed to that shard's
    /// affine worker. Parts share a [`MgetMerge`]; the last part to finish
    /// encodes the combined response.
    UcrMgetPart {
        ep: Endpoint,
        merge: Rc<RefCell<MgetMerge>>,
        shard: usize,
        /// `(original key index, key)` pairs owned by `shard`.
        keys: Vec<(usize, Vec<u8>)>,
    },
    Sock {
        sock: Rc<Socket>,
        cmd: Command,
    },
    SockBin {
        sock: Rc<Socket>,
        frame: BinFrame,
    },
    SockUdp {
        sock: Rc<DgramSocket>,
        src: socksim::SocketAddr,
        request_id: u16,
        cmd: Command,
    },
}

/// One resolved `Mget` hit: `(key, flags, cas, data)`.
type MgetSlot = (Vec<u8>, u32, u64, Vec<u8>);

/// Scatter/gather state for a multi-shard `Mget` split at dispatch.
///
/// Slots are indexed by the key's position in the original request so the
/// merged response lists entries in request order regardless of which
/// shard finishes last.
struct MgetMerge {
    req: ReqHeader,
    slots: Vec<Option<MgetSlot>>,
    remaining: usize,
}

struct SrvInner {
    node: NodeId,
    sim: Sim,
    store: RefCell<SegmentedStore>,
    /// Lock-contention model this server runs under.
    model: StoreModel,
    /// Key→segment policy, cached so dispatch can route without touching
    /// the store. Has one segment under `Idealized`/`GlobalLock`.
    router: ShardRouter,
    /// Virtual-time locks guarding store access: empty under `Idealized`,
    /// one under `GlobalLock`, one per segment under `Sharded`.
    locks: Vec<Rc<VLock>>,
    /// Span keys for socket-path lock spans (sockets carry no `req_id`);
    /// starts at 1 so no span is keyed by a literal zero.
    sock_op: Cell<u64>,
    workers: Vec<Sender<WorkItem>>,
    next_worker: Cell<usize>,
    ep_workers: RefCell<HashMap<u64, usize>>,
    worker_fixed: SimDuration,
    hash_lookup: SimDuration,
    running: Cell<bool>,
    stats: SrvStats,
    ucr: RefCell<Option<UcrRuntime>>,
    roce: RefCell<Option<UcrRuntime>>,
    /// Latency-attribution sink, when attached (adds no virtual time).
    spans: RefCell<Option<Rc<LatencySpans>>>,
    /// Cross-layer event tracer (cluster-wide; adds no virtual time).
    tracer: Rc<Tracer>,
    /// Cluster metrics registry: per-worker queue-depth gauges and
    /// batch-drain counters land here (adds no virtual time).
    metrics: Rc<Metrics>,
    /// Per-operation worker service-time histograms, keyed by
    /// [`McOp::label`]; surfaced through `stats`.
    op_hist: RefCell<HashMap<&'static str, Rc<Histogram>>>,
    /// Cached handles for the per-slab-class occupancy/eviction gauges,
    /// created lazily for populated classes only (a default store has
    /// dozens of classes, most never touched).
    slab_gauges: RefCell<HashMap<usize, ClassGauges>>,
    /// Store-level occupancy gauges (`mc.nodeN.store.*`).
    items_gauge: Rc<simnet::metrics::Gauge>,
    bytes_gauge: Rc<simnet::metrics::Gauge>,
    /// Item-directory mirrors for the bypass-GET path, one per RDMA
    /// fabric (`[ib, roce]`). Empty until a client's first
    /// `MSG_MC_DIR_REQ` lands on that fabric.
    mirrors: [Rc<BypassDir>; 2],
    /// Set once any directory request has been served; gates the store's
    /// slab-event tracking and the post-op mirror sync.
    bypass_on: Cell<bool>,
    /// Workload observatory (hot keys, exemplars, SLOs), when attached.
    observatory: Option<Rc<WorkloadObservatory>>,
}

/// Gauge handles for one slab class (`mc.nodeN.slab.classC.*`).
struct ClassGauges {
    used: Rc<simnet::metrics::Gauge>,
    free: Rc<simnet::metrics::Gauge>,
    occupancy: Rc<simnet::metrics::Gauge>,
    evictions: Rc<simnet::metrics::Gauge>,
}

/// A running Memcached server.
#[derive(Clone)]
pub struct McServer {
    inner: Rc<SrvInner>,
}

struct ReqDispatch {
    srv: Weak<SrvInner>,
}

impl AmHandler for ReqDispatch {
    fn on_complete(&self, ep: &Endpoint, hdr: &[u8], data: AmData) {
        let Some(srv) = self.srv.upgrade() else {
            return;
        };
        if !srv.running.get() {
            return;
        }
        let Some(req) = ReqHeader::decode(hdr) else {
            return;
        };
        let data = data.into_vec().unwrap_or_default();
        // Request landed and is decoded: the request-wire stage ends at
        // the dispatch hand-off.
        srv.span(|sp| sp.mark(req.req_id, Stage::RequestWire, srv.sim.now()));
        srv.tracer.instant(
            Layer::Core,
            "dispatch",
            srv.node,
            Track::Main,
            req.req_id,
            data.len() as u64,
            srv.sim.now(),
        );
        srv.stats.ucr_requests.set(srv.stats.ucr_requests.get() + 1);
        // Under `Sharded`, keyed requests go to the owning shard's affine
        // worker and multi-shard Mgets are split into per-shard parts.
        // Everything else keeps the upstream policy: every request of a
        // connection is served by the worker the connection was assigned
        // to (paper §V-A).
        if matches!(srv.model, StoreModel::Sharded(_)) {
            if req.op == McOp::Mget {
                let mut groups: BTreeMap<usize, Vec<(usize, Vec<u8>)>> = BTreeMap::new();
                for (i, k) in req.keys.iter().enumerate() {
                    groups
                        .entry(srv.router.index(k))
                        .or_default()
                        .push((i, k.clone()));
                }
                if groups.len() > 1 {
                    let merge = Rc::new(RefCell::new(MgetMerge {
                        slots: vec![None; req.keys.len()],
                        remaining: groups.len(),
                        req,
                    }));
                    for (shard, keys) in groups {
                        let _ =
                            srv.workers[srv.worker_for_shard(shard)].send(WorkItem::UcrMgetPart {
                                ep: ep.clone(),
                                merge: merge.clone(),
                                shard,
                                keys,
                            });
                    }
                    return;
                }
            }
            if let Some(k) = req.keys.first() {
                let widx = srv.worker_for_shard(srv.router.index(k));
                let _ = srv.workers[widx].send(WorkItem::Ucr {
                    ep: ep.clone(),
                    req,
                    data,
                });
                return;
            }
        }
        let widx = srv.worker_for_ep(ep.id());
        let _ = srv.workers[widx].send(WorkItem::Ucr {
            ep: ep.clone(),
            req,
            data,
        });
    }
}

/// Which RDMA fabric a directory handler serves (index into
/// `SrvInner::mirrors`).
#[derive(Clone, Copy)]
enum FabricSide {
    Ib = 0,
    Roce = 1,
}

/// Per-fabric mirror directory for the server-CPU-bypass GET path
/// (the paper's one-sided §IV-B primitive applied to `get`).
///
/// The store's slab pages are plain host memory, invisible to the HCA, so
/// clients cannot RDMA-read them directly. A `BypassDir` keeps an
/// RDMA-registered **mirror** of every slab page holding at least one
/// item a client requested a descriptor for. A mirror page lays chunks
/// out at the slab page's offsets; the last 8 bytes of each chunk-sized
/// slot (slack the 48-byte modeled item header guarantees) carry the
/// item's seqlock version word, so a single RDMA read fetches value
/// bytes and version together and the client can detect a concurrent
/// writer without a second round trip.
#[derive(Default)]
struct BypassDir {
    /// Mirrored slab pages keyed `(segment, class, page)` — slab page
    /// indices are per-segment arenas, so the segment disambiguates.
    pages: RefCell<HashMap<(usize, u8, u32), MirrorPage>>,
}

/// One RDMA-registered mirror of a slab page.
struct MirrorPage {
    mem: UcrMemory,
    chunk_size: usize,
    /// Chunks clients may hold descriptors for: added when a descriptor
    /// is served or the chunk is rewritten while mirrored, removed when
    /// the item dies. When this empties the page is retired — dropping
    /// the `MirrorPage` deregisters its MR, so a stale cached descriptor
    /// faults (`AccessViolation`) instead of silently reading memory the
    /// allocator has reassigned. That hard fault is the server half of
    /// the pin-down-cache fix.
    published: HashSet<u32>,
}

impl MirrorPage {
    /// Copies one chunk's raw bytes and current version word from the
    /// slab page into the mirror.
    fn sync_chunk(&self, slabs: &SlabAllocator, class: ClassId, page: u32, chunk: u32) {
        let raw = slabs.chunk_raw(class, page, chunk);
        let base = chunk as usize * self.chunk_size;
        self.mem
            .write(base, &raw[..self.chunk_size - BYPASS_VERSION_BYTES]);
        self.mem.write(
            base + self.chunk_size - BYPASS_VERSION_BYTES,
            &slabs.version_at(class, page, chunk).to_le_bytes(),
        );
    }
}

impl BypassDir {
    /// Serves one directory lookup. The key resolves read-only — no LRU
    /// bump, no stats — and the whole call runs inline in the UCR
    /// progress engine: a bypassed GET never wakes a worker thread.
    fn serve(&self, srv: &SrvInner, rt: &UcrRuntime, req: &DirReq) -> DirResp {
        if !srv.bypass_on.get() {
            srv.bypass_on.set(true);
            srv.store.borrow_mut().set_event_tracking(true);
        }
        let now = srv.now_secs();
        let store = srv.store.borrow();
        let Some((seg, item)) = store.locate(&req.key, now) else {
            return DirResp::miss(req.req_id);
        };
        let slabs = store.segment(seg).slabs();
        let (class, pidx, chunk) = (item.loc.class, item.loc.page(), item.loc.chunk());
        let chunk_size = slabs.chunk_size(class);
        let mut pages = self.pages.borrow_mut();
        let page = pages.entry((seg, class.0, pidx)).or_insert_with(|| {
            let per_page = slabs.chunks_per_page(class);
            MirrorPage {
                mem: rt.register_memory(per_page as usize * chunk_size),
                chunk_size,
                published: HashSet::new(),
            }
        });
        // Snapshot (or defensively re-sync) the served chunk; every later
        // store mutation reaches the mirror through the slab-event drain.
        page.sync_chunk(slabs, class, pidx, chunk);
        page.published.insert(chunk);
        let base = chunk as usize * chunk_size;
        let window = page
            .mem
            .descriptor(base + item.klen as usize, chunk_size - item.klen as usize);
        DirResp {
            req_id: req.req_id,
            found: true,
            node: window.node.0,
            rkey: window.rkey,
            offset: window.offset,
            len: window.len,
            vlen: item.vlen,
            flags: item.flags,
            cas: item.cas,
            exp: item.exp,
            version: item.version,
        }
    }

    /// Applies one segment's batch of slab events to the mirrored pages.
    /// `Written` refreshes chunk bytes and version; `Invalidated` bumps
    /// only the version word so an in-flight client read observes the
    /// mismatch. Pages whose published set empties are retired (MR
    /// deregistered).
    fn apply(&self, segment: &Store, seg: usize, events: &[SlabEvent]) {
        let slabs = segment.slabs();
        let mut pages = self.pages.borrow_mut();
        for ev in events {
            let loc = ev.loc();
            let Some(page) = pages.get_mut(&(seg, loc.class.0, loc.page())) else {
                continue;
            };
            match ev {
                SlabEvent::Written { .. } => {
                    page.sync_chunk(slabs, loc.class, loc.page(), loc.chunk());
                    page.published.insert(loc.chunk());
                }
                SlabEvent::Invalidated { version, .. } => {
                    let base = loc.chunk() as usize * page.chunk_size;
                    page.mem.write(
                        base + page.chunk_size - BYPASS_VERSION_BYTES,
                        &version.to_le_bytes(),
                    );
                    page.published.remove(&loc.chunk());
                }
            }
        }
        pages.retain(|_, p| !p.published.is_empty());
    }
}

/// Inline handler for `MSG_MC_DIR_REQ`: answers item-directory lookups
/// from the progress engine without involving any worker thread.
struct DirDispatch {
    srv: Weak<SrvInner>,
    side: FabricSide,
}

impl AmHandler for DirDispatch {
    fn on_complete(&self, ep: &Endpoint, hdr: &[u8], _data: AmData) {
        let Some(srv) = self.srv.upgrade() else {
            return;
        };
        if !srv.running.get() {
            return;
        }
        let Some(req) = DirReq::decode(hdr) else {
            return;
        };
        let rt = match self.side {
            FabricSide::Ib => srv.ucr.borrow().clone(),
            FabricSide::Roce => srv.roce.borrow().clone(),
        };
        let Some(rt) = rt else { return };
        let resp = srv.mirrors[self.side as usize].serve(&srv, &rt, &req);
        // A directory request is a client-direct read of this key: the
        // hot-key sketch must see it even though no worker ever will.
        if let Some(obs) = srv.observatory.as_ref() {
            obs.observe_key(&req.key, false, None);
        }
        srv.tracer.instant(
            Layer::Core,
            "dir_lookup",
            srv.node,
            Track::Main,
            req.req_id,
            resp.found as u64,
            srv.sim.now(),
        );
        ep.post_message(
            MSG_MC_DIR_RESP,
            resp.encode(),
            Vec::new(),
            SendOptions {
                target_ctr: req.ctr_id,
                ..Default::default()
            },
        );
    }
}

impl McServer {
    /// Starts a server on `node` of `world`.
    pub fn start(world: &World, node: NodeId, config: McServerConfig) -> McServer {
        let sim = world.sim().clone();
        let profile = world.profile();
        let mut worker_txs = Vec::new();
        let mut worker_rxs = Vec::new();
        for _ in 0..config.workers.max(1) {
            let (tx, rx) = sync::channel();
            worker_txs.push(tx);
            worker_rxs.push(rx);
        }
        // `Idealized` and `GlobalLock` keep the classic unsharded layout;
        // `Sharded(n)` splits the arena (memory cap divided losslessly).
        let shards = match config.store_model {
            StoreModel::Idealized | StoreModel::GlobalLock => 1,
            StoreModel::Sharded(n) => n,
        };
        let store = SegmentedStore::new(config.store, shards);
        let router = *store.router();
        // One lock per serialization domain. `Idealized` has none: lock
        // setup registers metrics and tracer bindings, and the default
        // model must leave every observable surface untouched.
        let locks: Vec<Rc<VLock>> = match config.store_model {
            StoreModel::Idealized => Vec::new(),
            StoreModel::GlobalLock => vec![VLock::new(&sim)],
            StoreModel::Sharded(_) => (0..router.count()).map(|_| VLock::new(&sim)).collect(),
        };
        for (s, lock) in locks.iter().enumerate() {
            let prefix = format!("mc.node{}.shard{}", node.0, s);
            let metrics = world.cluster.metrics();
            lock.bind_meters(VLockMeters {
                ops: metrics.counter(&format!("{prefix}.ops")),
                lock_wait_ns: metrics.counter(&format!("{prefix}.lock_wait_ns")),
                lock_hold_ns: metrics.counter(&format!("{prefix}.lock_hold_ns")),
                contended: metrics.counter(&format!("{prefix}.contended")),
            });
            lock.set_tracer(world.cluster.tracer().clone(), node);
        }
        let inner = Rc::new(SrvInner {
            node,
            sim: sim.clone(),
            store: RefCell::new(store),
            model: config.store_model,
            router,
            locks,
            sock_op: Cell::new(1),
            workers: worker_txs,
            next_worker: Cell::new(0),
            ep_workers: RefCell::new(HashMap::new()),
            worker_fixed: profile.host.worker_fixed,
            hash_lookup: profile.host.hash_lookup,
            running: Cell::new(true),
            stats: SrvStats::default(),
            ucr: RefCell::new(None),
            roce: RefCell::new(None),
            spans: RefCell::new(None),
            tracer: world.cluster.tracer().clone(),
            metrics: world.cluster.metrics().clone(),
            op_hist: RefCell::new(HashMap::new()),
            slab_gauges: RefCell::new(HashMap::new()),
            items_gauge: world
                .cluster
                .metrics()
                .gauge(&format!("mc.node{}.store.curr_items", node.0)),
            bytes_gauge: world
                .cluster
                .metrics()
                .gauge(&format!("mc.node{}.store.bytes", node.0)),
            mirrors: [Rc::default(), Rc::default()],
            bypass_on: Cell::new(false),
            observatory: config
                .observatory
                .as_ref()
                .map(|cfg| WorkloadObservatory::new(cfg, node.0, world.cluster.metrics())),
        });

        for (widx, rx) in worker_rxs.into_iter().enumerate() {
            let weak = Rc::downgrade(&inner);
            sim.spawn(worker_loop(weak, rx, widx as u32));
        }

        if config.enable_ucr {
            let rt = start_ucr_listener(&sim, &inner, &world.ib, node, config.port, FabricSide::Ib);
            *inner.ucr.borrow_mut() = Some(rt);
        }
        if config.enable_roce {
            if let Some(roce) = &world.roce {
                let rt =
                    start_ucr_listener(&sim, &inner, roce, node, config.port, FabricSide::Roce);
                *inner.roce.borrow_mut() = Some(rt);
            }
        }

        if config.enable_udp {
            for stack in &config.socket_stacks {
                if !world.profile().supports(*stack) || !stack.is_sockets() {
                    continue;
                }
                let Ok(udp) = world.socks.udp_bind(*stack, node, config.port) else {
                    continue;
                };
                let weak = Rc::downgrade(&inner);
                sim.spawn(udp_receiver(weak, Rc::new(udp)));
            }
        }

        for stack in &config.socket_stacks {
            if !world.profile().supports(*stack) || !stack.is_sockets() {
                continue;
            }
            let Ok(listener) = world.socks.listen(*stack, node, config.port) else {
                continue;
            };
            let weak = Rc::downgrade(&inner);
            let sim2 = sim.clone();
            sim.spawn(async move {
                while let Ok(sock) = listener.accept().await {
                    let Some(srv) = weak.upgrade() else { break };
                    if !srv.running.get() {
                        break;
                    }
                    sock.set_nodelay(true);
                    srv.stats.connections.set(srv.stats.connections.get() + 1);
                    let widx = srv.next_worker();
                    let weak2 = Rc::downgrade(&srv);
                    drop(srv);
                    sim2.spawn(conn_reader(weak2, Rc::new(sock), widx));
                }
            });
        }

        McServer { inner }
    }

    /// The node this server runs on.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// Server counters.
    pub fn stats(&self) -> &SrvStats {
        &self.inner.stats
    }

    /// Storage-engine statistics.
    pub fn store_stats(&self) -> mcstore::StoreStats {
        self.inner.store.borrow().stats()
    }

    /// Live item count.
    pub fn curr_items(&self) -> u64 {
        self.inner.store.borrow().curr_items()
    }

    /// The lock-contention model this server runs under.
    pub fn store_model(&self) -> StoreModel {
        self.inner.model
    }

    /// Number of store segments (1 unless [`StoreModel::Sharded`]).
    pub fn shard_count(&self) -> usize {
        self.inner.store.borrow().shard_count()
    }

    /// Per-lock contention statistics, one entry per serialization
    /// domain: one for [`StoreModel::GlobalLock`], one per segment for
    /// [`StoreModel::Sharded`], empty under [`StoreModel::Idealized`]
    /// (which has no locks).
    pub fn lock_stats(&self) -> Vec<simnet::vlock::VLockStats> {
        self.inner.locks.iter().map(|l| l.stats()).collect()
    }

    /// The server's UCR runtime, when UCR is enabled (ablation hooks:
    /// eager-threshold sweeps, runtime statistics).
    pub fn ucr_runtime(&self) -> Option<UcrRuntime> {
        self.inner.ucr.borrow().clone()
    }

    /// The server's RoCE-side UCR runtime, when running.
    pub fn roce_runtime(&self) -> Option<UcrRuntime> {
        self.inner.roce.borrow().clone()
    }

    /// The workload observatory, when one was configured (bind its SLO
    /// trackers into a sampler, share its exemplar ring with a health
    /// monitor).
    pub fn observatory(&self) -> Option<Rc<WorkloadObservatory>> {
        self.inner.observatory.clone()
    }

    /// Attaches (or clears) a latency-attribution sink. Use the same sink
    /// as the client's [`McClient::attach_spans`](crate::McClient::
    /// attach_spans) so server-side stages (request-wire end, dispatch
    /// wait, worker service) land in the same per-operation spans.
    pub fn attach_spans(&self, spans: Option<Rc<LatencySpans>>) {
        *self.inner.spans.borrow_mut() = spans;
    }

    /// Stops accepting and serving. UCR endpoints fail over to their error
    /// path; socket clients see EOF on their next read.
    pub fn shutdown(&self) {
        self.inner.running.set(false);
        if let Some(rt) = self.inner.ucr.borrow_mut().take() {
            rt.shutdown();
        }
        if let Some(rt) = self.inner.roce.borrow_mut().take() {
            rt.shutdown();
        }
    }
}

/// Brings up one UCR runtime on `fabric`, registers the request handler,
/// and runs the accept loop (round-robin worker binding, SV-A).
fn start_ucr_listener(
    sim: &Sim,
    inner: &Rc<SrvInner>,
    fabric: &verbs::IbFabric,
    node: NodeId,
    port: u16,
    side: FabricSide,
) -> UcrRuntime {
    let rt = UcrRuntime::new(fabric, node);
    rt.register_handler(
        MSG_MC_REQ,
        ReqDispatch {
            srv: Rc::downgrade(inner),
        },
    );
    rt.register_handler(
        MSG_MC_DIR_REQ,
        DirDispatch {
            srv: Rc::downgrade(inner),
            side,
        },
    );
    // A taken port means another runtime already owns this fabric's
    // service port (a misconfigured double-start). Degrade gracefully:
    // the runtime stays up for outbound use but accepts nothing, and
    // clients of this fabric fail over to their error paths.
    let listener = match rt.listen(port) {
        Ok(l) => l,
        Err(_) => return rt,
    };
    let weak = Rc::downgrade(inner);
    sim.spawn(async move {
        while let Ok(ep) = listener.accept().await {
            let Some(srv) = weak.upgrade() else { break };
            if !srv.running.get() {
                break;
            }
            srv.stats.connections.set(srv.stats.connections.get() + 1);
            srv.assign_ep(ep.id());
        }
    });
    rt
}

impl SrvInner {
    fn next_worker(&self) -> usize {
        let w = self.next_worker.get();
        self.next_worker.set((w + 1) % self.workers.len());
        w
    }

    fn assign_ep(&self, ep_id: u64) {
        let w = self.next_worker();
        self.ep_workers.borrow_mut().insert(ep_id, w);
    }

    fn worker_for_ep(&self, ep_id: u64) -> usize {
        if let Some(w) = self.ep_workers.borrow().get(&ep_id) {
            return *w;
        }
        // Endpoint arrived before (or without) the accept bookkeeping:
        // assign now.
        let w = self.next_worker();
        self.ep_workers.borrow_mut().insert(ep_id, w);
        w
    }

    /// Shard-affine worker binding: a shard's requests always land on the
    /// same worker, so its lock only sees cross-worker contention when
    /// shards outnumber workers (or sockets race the UCR path).
    fn worker_for_shard(&self, shard: usize) -> usize {
        shard % self.workers.len()
    }

    /// Fresh span key for socket-path lock spans (sockets have no
    /// `req_id`); never zero.
    fn next_sock_op(&self) -> u64 {
        let op = self.sock_op.get();
        self.sock_op.set(op + 1);
        op
    }

    /// Acquires the store locks a request touching `shards` needs, in
    /// ascending order (the deadlock-free total order), then charges the
    /// per-key hash/item cost *inside* the critical section — that is
    /// the serialized portion of upstream memcached's `cache_lock`.
    /// Returns no guards under `Idealized` (callers charge the combined
    /// [`Self::service_cost`] instead).
    async fn lock_shards(
        self: &Rc<Self>,
        shards: impl IntoIterator<Item = usize>,
        keys: usize,
        op: u64,
        track: Track,
    ) -> Vec<VLockGuard> {
        let mut guards = Vec::new();
        match self.model {
            StoreModel::Idealized => return guards,
            StoreModel::GlobalLock => guards.push(self.locks[0].lock(op, track).await),
            StoreModel::Sharded(_) => {
                let set: std::collections::BTreeSet<usize> = shards.into_iter().collect();
                for s in set {
                    guards.push(self.locks[s].lock(op, track).await);
                }
            }
        }
        self.sim.sleep(self.hash_lookup * keys.max(1) as u64).await;
        guards
    }

    fn now_secs(&self) -> u32 {
        BASE_UNIX_TIME + self.sim.now().as_secs_f64() as u32
    }

    /// Worker-thread service charge for one request.
    fn service_cost(&self, keys: usize) -> SimDuration {
        self.worker_fixed + self.hash_lookup * keys.max(1) as u64
    }

    /// Runs `f` against the attached span sink, if any.
    fn span(&self, f: impl FnOnce(&LatencySpans)) {
        if let Some(sp) = self.spans.borrow().as_ref() {
            f(sp);
        }
    }

    /// The service-time histogram for `op`, created on first use.
    fn op_histogram(&self, op: McOp) -> Rc<Histogram> {
        self.op_hist
            .borrow_mut()
            .entry(op.label())
            .or_insert_with(|| Rc::new(Histogram::new()))
            .clone()
    }

    /// Publishes storage-engine occupancy into the cluster gauges:
    /// store-level item/byte counts plus per-slab-class used/free chunks,
    /// occupancy ratio, and eviction totals. Gauge watermarks give the
    /// high-water occupancy for free. Pure host-side accounting — costs
    /// no virtual time.
    fn publish_store_gauges(&self, store: &SegmentedStore) {
        self.items_gauge.set(store.curr_items() as f64);
        self.bytes_gauge.set(store.bytes_stored() as f64);
        let evictions = store.class_evictions();
        let mut gauges = self.slab_gauges.borrow_mut();
        for c in 0..store.class_count() {
            let st = store.class_stats(mcstore::ClassId(c as u8));
            let evicted = evictions.get(c).copied().unwrap_or(0);
            if st.pages == 0 && evicted == 0 {
                continue; // class never touched: keep the registry lean
            }
            let g = gauges.entry(c).or_insert_with(|| {
                let prefix = format!("mc.node{}.slab.class{}", self.node.0, c);
                ClassGauges {
                    used: self.metrics.gauge(&format!("{prefix}.used_chunks")),
                    free: self.metrics.gauge(&format!("{prefix}.free_chunks")),
                    occupancy: self.metrics.gauge(&format!("{prefix}.occupancy")),
                    evictions: self.metrics.gauge(&format!("{prefix}.evictions")),
                }
            });
            g.used.set(st.used as f64);
            g.free.set(st.free as f64);
            let chunks = st.used + st.free;
            g.occupancy.set(if chunks == 0 {
                0.0
            } else {
                st.used as f64 / chunks as f64
            });
            g.evictions.set(evicted as f64);
        }
    }

    /// Propagates store mutations to the bypass mirrors: drains the slab
    /// events the just-finished operation emitted and applies them to
    /// every fabric's mirror pages. Called synchronously after each
    /// store-touching request (no await between the mutation and the
    /// drain), so a client's RDMA read can never observe a mirror that
    /// lags the store across a scheduling point. No-op until the first
    /// directory request turns event tracking on.
    fn sync_mirrors(&self) {
        if !self.bypass_on.get() {
            return;
        }
        let batches = self.store.borrow_mut().take_slab_events();
        if batches.is_empty() {
            return;
        }
        let store = self.store.borrow();
        for (seg, events) in &batches {
            for dir in &self.mirrors {
                dir.apply(store.segment(*seg), *seg, events);
            }
        }
    }

    /// Brings every live gauge up to date immediately before a metrics
    /// export (`stats prom`): store occupancy plus the UCR runtime gauges
    /// that are otherwise refreshed on progress-engine wakes.
    fn refresh_observability_gauges(&self, store: &SegmentedStore) {
        self.publish_store_gauges(store);
        if let Some(rt) = self.ucr.borrow().as_ref() {
            rt.publish_gauges();
        }
        if let Some(rt) = self.roce.borrow().as_ref() {
            rt.publish_gauges();
        }
        if let Some(obs) = self.observatory.as_ref() {
            obs.refresh_gauges();
        }
    }

    /// `stats reset` (memcached parity): zeroes every counter and
    /// histogram — server request counters, storage-engine statistics,
    /// per-op service histograms, UCR runtime counters on both fabrics,
    /// and the cluster registry's counters/histograms — while preserving
    /// gauges and their watermarks (levels describe *current* state; a
    /// reset must not forge them).
    fn reset_all_stats(&self, store: &mut SegmentedStore) {
        self.stats.ucr_requests.set(0);
        self.stats.sock_requests.set(0);
        store.reset_stats();
        for h in self.op_hist.borrow().values() {
            h.reset();
        }
        if let Some(rt) = self.ucr.borrow().as_ref() {
            rt.stats().reset();
        }
        if let Some(rt) = self.roce.borrow().as_ref() {
            rt.stats().reset();
        }
        if let Some(obs) = self.observatory.as_ref() {
            obs.reset();
        }
        self.metrics.reset_counters_and_histograms();
    }
}

/// The `stats prom` sub-report: the cluster's Prometheus exposition,
/// carried over the stats plumbing as `(first-token, rest-of-line)`
/// pairs. Each exposition line has exactly one space after its first
/// token (`#` for comment lines, the series name otherwise), so clients
/// reconstruct the text losslessly by rejoining `"{k} {v}"`.
fn prom_stat_lines(srv: &SrvInner, store: &SegmentedStore) -> Vec<(String, String)> {
    srv.refresh_observability_gauges(store);
    let text = match srv.observatory.as_ref() {
        Some(obs) => {
            simnet::timeseries::prometheus_text_with_exemplars(&srv.metrics, &obs.ring().snapshot())
        }
        None => simnet::timeseries::prometheus_text(&srv.metrics),
    };
    text.lines()
        .map(|l| {
            let mut it = l.splitn(2, ' ');
            (
                it.next().unwrap_or_default().to_string(),
                it.next().unwrap_or_default().to_string(),
            )
        })
        .collect()
}

/// The `stats hot` sub-report: the workload observatory's hot-key table
/// (a disabled observatory answers with a single `observatory off` line,
/// as do the other observatory verbs).
fn hot_stat_lines(srv: &SrvInner) -> Vec<(String, String)> {
    match srv.observatory.as_ref() {
        Some(obs) => obs.hot_stat_lines(srv.sim.now()),
        None => vec![("observatory".to_string(), "off".to_string())],
    }
}

/// The `stats slo` sub-report: per-op objectives with rolling compliance
/// and error-budget burn.
fn slo_stat_lines(srv: &SrvInner) -> Vec<(String, String)> {
    match srv.observatory.as_ref() {
        Some(obs) => obs.slo_stat_lines(srv.sim.now()),
        None => vec![("observatory".to_string(), "off".to_string())],
    }
}

/// The `stats exemplars` sub-report: gate counters plus the captured
/// tail records.
fn exemplar_stat_lines(srv: &SrvInner) -> Vec<(String, String)> {
    match srv.observatory.as_ref() {
        Some(obs) => obs.exemplar_stat_lines(),
        None => vec![("observatory".to_string(), "off".to_string())],
    }
}

/// The `stats trace` sub-report: per-layer event counts plus the state of
/// the flight recorder (paper-independent observability surface).
fn trace_stat_lines(srv: &SrvInner) -> Vec<(String, String)> {
    let t = &srv.tracer;
    let mut lines: Vec<(String, String)> = Layer::ALL
        .iter()
        .map(|l| {
            (
                format!("trace.events.{}", l.label()),
                t.layer_count(*l).to_string(),
            )
        })
        .collect();
    lines.push(("trace.events.total".into(), t.total_events().to_string()));
    lines.push(("trace.flight.len".into(), t.flight_len().to_string()));
    lines.push((
        "trace.flight.dropped".into(),
        t.flight_dropped().to_string(),
    ));
    lines.push(("trace.faults".into(), t.fault_count().to_string()));
    lines
}

/// The `stats profile` sub-report: the attached profiler's critical-path
/// aggregates, windowed signatures, and unaccounted-time audit (a single
/// `profiler off` line when none is attached — profiling is opt-in, like
/// the observatory).
fn profile_stat_lines(srv: &SrvInner) -> Vec<(String, String)> {
    match srv.tracer.profiler() {
        Some(p) => p.stat_lines(),
        None => vec![("profiler".to_string(), "off".to_string())],
    }
}

async fn worker_loop(srv: Weak<SrvInner>, rx: Receiver<WorkItem>, widx: u32) {
    // Per-worker queue instruments: the gauge holds the number of ready
    // requests each wake found (the batch it drained); the counters give
    // mean batch size over the run. Metrics writes cost no virtual time.
    let (depth_gauge, wakes, batched) = match srv.upgrade() {
        Some(inner) => {
            let prefix = format!("mc.node{}.worker{}", inner.node.0, widx);
            (
                inner.metrics.gauge(&format!("{prefix}.queue_depth")),
                inner.metrics.counter(&format!("{prefix}.wakes")),
                inner.metrics.counter(&format!("{prefix}.batch_items")),
            )
        }
        None => return,
    };
    loop {
        let Ok(first) = rx.recv().await else { break };
        // Drain everything already queued so one wake services all ready
        // requests. `try_recv` pops without suspending and `recv` on a
        // non-empty queue completes on its first poll, so the service
        // order and virtual-time schedule are identical to the classic
        // item-at-a-time loop — the batch is pure accounting.
        let mut batch = vec![first];
        while let Some(item) = rx.try_recv() {
            batch.push(item);
        }
        depth_gauge.set(batch.len() as f64);
        wakes.inc();
        batched.add(batch.len() as u64);
        for item in batch {
            let Some(inner) = srv.upgrade() else { return };
            if !inner.running.get() {
                return;
            }
            match item {
                WorkItem::Ucr { ep, req, data } => serve_ucr(&inner, ep, req, data, widx).await,
                WorkItem::UcrMgetPart {
                    ep,
                    merge,
                    shard,
                    keys,
                } => serve_ucr_mget_part(&inner, ep, merge, shard, keys, widx).await,
                WorkItem::Sock { sock, cmd } => serve_sock(&inner, sock, cmd, widx).await,
                WorkItem::SockBin { sock, frame } => {
                    serve_sock_bin(&inner, sock, frame, widx).await
                }
                WorkItem::SockUdp {
                    sock,
                    src,
                    request_id,
                    cmd,
                } => serve_sock_udp(&inner, sock, src, request_id, cmd, widx).await,
            }
        }
        // Batch drained: refresh the storage-occupancy gauges so a
        // concurrently running time-series sampler sees live slab state.
        if let Some(inner) = srv.upgrade() {
            if let Ok(store) = inner.store.try_borrow() {
                inner.publish_store_gauges(&store);
            }
        }
    }
}

// ---------------------------------------------------------------------
// UCR service path
// ---------------------------------------------------------------------

async fn serve_ucr(srv: &Rc<SrvInner>, ep: Endpoint, req: ReqHeader, data: Vec<u8>, widx: u32) {
    // The connection's worker picked the item up: dispatch wait ends.
    let service_start = srv.sim.now();
    srv.span(|sp| sp.mark(req.req_id, Stage::DispatchWait, service_start));
    srv.tracer.begin(
        Layer::Core,
        "worker_service",
        srv.node,
        Track::Worker(widx),
        req.req_id,
        data.len() as u64,
        service_start,
    );
    let key = req.keys.first().cloned().unwrap_or_default();
    // Idealized: the whole service time is one uncontended charge — the
    // exact schedule every pre-`StoreModel` experiment ran under. Locked
    // models split it: the fixed dispatch/parse portion runs lock-free,
    // then `lock_shards` serializes the hash/item portion.
    let _guards = match srv.model {
        StoreModel::Idealized => {
            srv.sim.sleep(srv.service_cost(req.keys.len())).await;
            Vec::new()
        }
        _ => {
            srv.sim.sleep(srv.worker_fixed).await;
            let shards: Vec<usize> = match req.op {
                // Flush and stats touch every segment.
                McOp::FlushAll | McOp::Stats => (0..srv.router.count()).collect(),
                _ => vec![srv.router.index(&key)],
            };
            srv.lock_shards(shards, req.keys.len(), req.req_id, Track::Worker(widx))
                .await
        }
    };
    let now = srv.now_secs();
    let mut resp = RespHeader {
        req_id: req.req_id,
        status: RespStatus::Ok,
        flags: 0,
        cas: 0,
        number: 0,
        nvalues: 0,
    };
    let mut payload: Vec<u8> = Vec::new();
    let mut store = srv.store.borrow_mut();
    match req.op {
        McOp::Get => match store.get(&key, now) {
            Some(v) => {
                resp.status = RespStatus::Hit;
                resp.flags = v.flags;
                resp.cas = v.cas;
                payload = v.data;
            }
            None => resp.status = RespStatus::Miss,
        },
        McOp::Mget => {
            let mut n = 0u16;
            for k in &req.keys {
                if let Some(v) = store.get(k, now) {
                    encode_mget_entry(&mut payload, k, v.flags, v.cas, &v.data);
                    n += 1;
                }
            }
            resp.status = RespStatus::Hit;
            resp.nvalues = n;
        }
        McOp::Set | McOp::Add | McOp::Replace | McOp::Append | McOp::Prepend => {
            let outcome = match req.op {
                McOp::Set => store.set(&key, &data, req.flags, req.exptime, now),
                McOp::Add => store.add(&key, &data, req.flags, req.exptime, now),
                McOp::Replace => store.replace(&key, &data, req.flags, req.exptime, now),
                McOp::Append => store.append(&key, &data, now),
                McOp::Prepend => store.prepend(&key, &data, now),
                _ => unreachable!(),
            };
            resp.status = outcome_status(outcome);
        }
        McOp::Cas => {
            let outcome = store.cas(&key, &data, req.flags, req.exptime, req.cas, now);
            resp.status = outcome_status(outcome);
        }
        McOp::Delete => {
            resp.status = if store.delete(&key, now) {
                RespStatus::Ok
            } else {
                RespStatus::NotFound
            };
        }
        McOp::Incr | McOp::Decr => {
            let r = if req.op == McOp::Incr {
                store.incr(&key, req.delta, now)
            } else {
                store.decr(&key, req.delta, now)
            };
            match r {
                Ok(n) => {
                    resp.status = RespStatus::Number;
                    resp.number = n;
                }
                Err(NumericError::NotFound) => resp.status = RespStatus::NotFound,
                Err(NumericError::NotNumeric) => resp.status = RespStatus::NotNumeric,
            }
        }
        McOp::Touch => {
            resp.status = if store.touch(&key, req.exptime, now) {
                RespStatus::Ok
            } else {
                RespStatus::NotFound
            };
        }
        McOp::FlushAll => {
            store.flush_all(now + req.exptime);
            resp.status = RespStatus::Ok;
        }
        McOp::Version => {
            resp.status = RespStatus::Ok;
            payload = SERVER_VERSION.as_bytes().to_vec();
        }
        McOp::Stats => {
            resp.status = RespStatus::Ok;
            payload = match key.as_slice() {
                b"slabs" => stat_pairs_to_text(&store.slab_stat_lines()),
                b"items" => stat_pairs_to_text(&store.item_stat_lines()),
                b"trace" => stat_pairs_to_text(&trace_stat_lines(srv)),
                b"prom" => stat_pairs_to_text(&prom_stat_lines(srv, &store)),
                b"hot" => stat_pairs_to_text(&hot_stat_lines(srv)),
                b"slo" => stat_pairs_to_text(&slo_stat_lines(srv)),
                b"exemplars" => stat_pairs_to_text(&exemplar_stat_lines(srv)),
                b"profile" => stat_pairs_to_text(&profile_stat_lines(srv)),
                b"reset" => {
                    srv.reset_all_stats(&mut store);
                    "reset ok\n".to_string()
                }
                b"" => render_stats(srv, &store),
                _ => String::new(),
            }
            .into_bytes();
        }
    }
    if let Some(obs) = srv.observatory.as_ref() {
        match req.op {
            McOp::Get => {
                let class = (resp.status == RespStatus::Hit)
                    .then(|| store.class_of(key.len(), payload.len()))
                    .flatten();
                obs.observe_key(&key, false, class);
            }
            McOp::Mget => {
                for k in &req.keys {
                    obs.observe_key(k, false, None);
                }
            }
            McOp::Set | McOp::Add | McOp::Replace | McOp::Append | McOp::Prepend | McOp::Cas => {
                obs.observe_key(&key, true, store.class_of(key.len(), data.len()));
            }
            McOp::Delete | McOp::Incr | McOp::Decr | McOp::Touch => {
                obs.observe_key(&key, true, None);
            }
            _ => {}
        }
    }
    drop(store);
    srv.sync_mirrors();
    // Store work done; from here the response is on its way back.
    let service_end = srv.sim.now();
    srv.span(|sp| sp.mark(req.req_id, Stage::WorkerService, service_end));
    srv.op_histogram(req.op)
        .record(service_end.saturating_since(service_start));
    if let Some(obs) = srv.observatory.as_ref() {
        obs.observe_service(
            req.op.label(),
            &key,
            data.len().max(payload.len()) as u64,
            service_end.saturating_since(service_start),
            req.req_id,
            service_end,
        );
    }
    srv.tracer.end(
        Layer::Core,
        "worker_service",
        srv.node,
        Track::Worker(widx),
        req.req_id,
        payload.len() as u64,
        service_end,
    );
    // AM 2: the response, targeting the counter named in AM 1 (§V-B).
    ep.post_message(
        MSG_MC_RESP,
        resp.encode(),
        payload,
        SendOptions {
            target_ctr: req.ctr_id,
            ..Default::default()
        },
    );
}

/// Serves one shard's slice of a split `Mget` (the [`StoreModel::Sharded`]
/// scatter/gather path). Each part charges its own fixed cost — the parts
/// run on different workers, genuinely in parallel — and locks only its
/// shard. The last part to finish encodes the merged response in original
/// key order and posts the single `MSG_MC_RESP`.
async fn serve_ucr_mget_part(
    srv: &Rc<SrvInner>,
    ep: Endpoint,
    merge: Rc<RefCell<MgetMerge>>,
    shard: usize,
    keys: Vec<(usize, Vec<u8>)>,
    widx: u32,
) {
    let service_start = srv.sim.now();
    let (req_id, ctr_id) = {
        let m = merge.borrow();
        (m.req.req_id, m.req.ctr_id)
    };
    // Stage marks accumulate deltas per stage, so marking once per part
    // attributes each part's queueing and service into the shared span.
    srv.span(|sp| sp.mark(req_id, Stage::DispatchWait, service_start));
    srv.tracer.begin(
        Layer::Core,
        "worker_service",
        srv.node,
        Track::Worker(widx),
        req_id,
        keys.len() as u64,
        service_start,
    );
    srv.sim.sleep(srv.worker_fixed).await;
    let _guards = srv
        .lock_shards([shard], keys.len(), req_id, Track::Worker(widx))
        .await;
    let now = srv.now_secs();
    {
        let mut store = srv.store.borrow_mut();
        let mut m = merge.borrow_mut();
        for (i, k) in &keys {
            if let Some(v) = store.get(k, now) {
                m.slots[*i] = Some((k.clone(), v.flags, v.cas, v.data));
            }
            if let Some(obs) = srv.observatory.as_ref() {
                obs.observe_key(k, false, None);
            }
        }
    }
    srv.sync_mirrors();
    let service_end = srv.sim.now();
    srv.span(|sp| sp.mark(req_id, Stage::WorkerService, service_end));
    srv.op_histogram(McOp::Mget)
        .record(service_end.saturating_since(service_start));
    srv.tracer.end(
        Layer::Core,
        "worker_service",
        srv.node,
        Track::Worker(widx),
        req_id,
        keys.len() as u64,
        service_end,
    );
    let finished = {
        let mut m = merge.borrow_mut();
        m.remaining -= 1;
        m.remaining == 0
    };
    if !finished {
        return;
    }
    let m = merge.borrow();
    let mut payload: Vec<u8> = Vec::new();
    let mut n = 0u16;
    for (k, flags, cas, data) in m.slots.iter().flatten() {
        encode_mget_entry(&mut payload, k, *flags, *cas, data);
        n += 1;
    }
    let resp = RespHeader {
        req_id,
        status: RespStatus::Hit,
        flags: 0,
        cas: 0,
        number: 0,
        nvalues: n,
    };
    if let Some(obs) = srv.observatory.as_ref() {
        obs.observe_service(
            McOp::Mget.label(),
            m.req.keys.first().map(Vec::as_slice).unwrap_or_default(),
            payload.len() as u64,
            service_end.saturating_since(service_start),
            req_id,
            service_end,
        );
    }
    ep.post_message(
        MSG_MC_RESP,
        resp.encode(),
        payload,
        SendOptions {
            target_ctr: ctr_id,
            ..Default::default()
        },
    );
}

fn stat_pairs_to_text(pairs: &[(String, String)]) -> String {
    pairs.iter().map(|(k, v)| format!("{k} {v}\n")).collect()
}

fn outcome_status(o: SetOutcome) -> RespStatus {
    match o {
        SetOutcome::Stored => RespStatus::Stored,
        SetOutcome::NotStored => RespStatus::NotStored,
        SetOutcome::Exists => RespStatus::Exists,
        SetOutcome::NotFound => RespStatus::NotFound,
        SetOutcome::TooLarge => RespStatus::TooLarge,
        SetOutcome::OutOfMemory => RespStatus::OutOfMemory,
    }
}

fn render_stats(srv: &SrvInner, store: &SegmentedStore) -> String {
    let st = store.stats();
    let mut out = String::new();
    let mut put = |k: &str, v: String| {
        out.push_str(k);
        out.push(' ');
        out.push_str(&v);
        out.push('\n');
    };
    put("version", SERVER_VERSION.to_string());
    put("curr_items", store.curr_items().to_string());
    put("bytes", store.bytes_stored().to_string());
    put("get_hits", st.get_hits.to_string());
    put("get_misses", st.get_misses.to_string());
    put("cmd_set", st.sets.to_string());
    put("evictions", st.evictions.to_string());
    put("reclaimed", st.reclaimed.to_string());
    put("cas_hits", st.cas_hits.to_string());
    put("cas_badval", st.cas_badval.to_string());
    put("total_items", st.total_items.to_string());
    put("ucr_requests", srv.stats.ucr_requests.get().to_string());
    put("sock_requests", srv.stats.sock_requests.get().to_string());
    put("curr_connections", srv.stats.connections.get().to_string());
    // UCR runtime counters (eager/rendezvous traffic, drops, faults).
    if let Some(rt) = srv.ucr.borrow().as_ref() {
        for (k, v) in rt.stats().report() {
            put(&k, v);
        }
    }
    // Per-stage latency attribution, when a span sink is attached.
    if let Some(sp) = srv.spans.borrow().as_ref() {
        for (k, v) in sp.report() {
            put(&k, v);
        }
    }
    // Per-operation worker service-time summaries (UCR path).
    {
        let hists = srv.op_hist.borrow();
        let mut labels: Vec<&&str> = hists.keys().collect();
        labels.sort_unstable();
        for label in labels {
            let h = &hists[*label];
            let s = h.summary();
            put(&format!("op.{label}.count"), s.count.to_string());
            put(
                &format!("op.{label}.service_us.mean"),
                format!("{:.3}", s.mean.as_micros_f64()),
            );
            put(
                &format!("op.{label}.service_us.p50"),
                format!("{:.3}", s.p50.as_micros_f64()),
            );
            put(
                &format!("op.{label}.service_us.p99"),
                format!("{:.3}", s.p99.as_micros_f64()),
            );
        }
    }
    out
}

// ---------------------------------------------------------------------
// Sockets service path
// ---------------------------------------------------------------------

/// Per-connection event task: reads, frames commands, and hands them to
/// the connection's worker (the libevent notification of the original
/// architecture).
async fn conn_reader(srv: Weak<SrvInner>, sock: Rc<Socket>, widx: usize) {
    let mut buf: Vec<u8> = Vec::new();
    // Protocol sniffing: the binary request magic cannot start an ASCII
    // command, so the first byte decides the connection's protocol.
    loop {
        if buf.is_empty() {
            match sock.read(64 * 1024).await {
                Ok(bytes) => buf.extend_from_slice(&bytes),
                Err(_) => return,
            }
        }
        if !buf.is_empty() {
            break;
        }
    }
    if buf[0] == MAGIC_REQUEST {
        return conn_reader_bin(srv, sock, widx, buf).await;
    }
    loop {
        match parse_command(&buf) {
            Ok(Some((cmd, used))) => {
                buf.drain(..used);
                let Some(inner) = srv.upgrade() else { return };
                if !inner.running.get() {
                    sock.close();
                    return;
                }
                if matches!(cmd, Command::Quit) {
                    sock.close();
                    return;
                }
                inner
                    .stats
                    .sock_requests
                    .set(inner.stats.sock_requests.get() + 1);
                // No request id on the ASCII wire: attribute by the one
                // open span (single-client attribution runs).
                inner.span(|sp| sp.mark_open(Stage::RequestWire, inner.sim.now()));
                // Detail-mode dispatch mark: op 0 means "no wire id" — the
                // profiler attributes it by the single open client op.
                inner.tracer.instant_detail(
                    Layer::Core,
                    "dispatch",
                    inner.node,
                    Track::Main,
                    0,
                    0,
                    inner.sim.now(),
                );
                let _ = inner.workers[widx].send(WorkItem::Sock {
                    sock: sock.clone(),
                    cmd,
                });
            }
            Ok(None) => match sock.read(64 * 1024).await {
                Ok(bytes) => buf.extend_from_slice(&bytes),
                Err(_) => return, // connection closed
            },
            Err(_) => {
                // Protocol error: answer and drop the connection, as
                // memcached does.
                let _ = sock.write_all(&encode_response(&Response::Error)).await;
                sock.close();
                return;
            }
        }
    }
}

async fn serve_sock(srv: &Rc<SrvInner>, sock: Rc<Socket>, cmd: Command, widx: u32) {
    srv.span(|sp| sp.mark_open(Stage::DispatchWait, srv.sim.now()));
    // One op id for the whole service: the detail-mode `worker_service`
    // span and the lock spans taken under it share the id, so the folded
    // profile nests lock_wait/lock_hold inside the service frame.
    let op = srv.next_sock_op();
    srv.tracer.begin_detail(
        Layer::Core,
        "worker_service",
        srv.node,
        Track::Worker(widx),
        op,
        0,
        srv.sim.now(),
    );
    let (resp, noreply) = execute_ascii_timed(srv, cmd, widx, op).await;
    srv.sync_mirrors();
    srv.span(|sp| sp.mark_open(Stage::WorkerService, srv.sim.now()));
    srv.tracer.end_detail(
        Layer::Core,
        "worker_service",
        srv.node,
        Track::Worker(widx),
        op,
        0,
        srv.sim.now(),
    );
    if !noreply {
        let _ = sock.write_all(&encode_response(&resp)).await;
    }
}

/// Charges one ASCII command's service time under the configured lock
/// model, then executes it. Shared by the TCP and UDP service paths.
/// Socket connections keep their round-robin worker binding under every
/// model — only the store locks are shard-aware here.
async fn execute_ascii_timed(
    srv: &Rc<SrvInner>,
    cmd: Command,
    widx: u32,
    op: u64,
) -> (Response, bool) {
    let keys = match &cmd {
        Command::Get { keys } | Command::Gets { keys } => keys.len(),
        _ => 1,
    };
    match srv.model {
        StoreModel::Idealized => {
            srv.sim.sleep(srv.service_cost(keys)).await;
            let now = srv.now_secs();
            let mut store = srv.store.borrow_mut();
            execute_ascii(srv, &mut store, cmd, now)
        }
        StoreModel::GlobalLock => {
            srv.sim.sleep(srv.worker_fixed).await;
            let _guards = srv.lock_shards([0], keys, op, Track::Worker(widx)).await;
            let now = srv.now_secs();
            let mut store = srv.store.borrow_mut();
            execute_ascii(srv, &mut store, cmd, now)
        }
        StoreModel::Sharded(_) => {
            srv.sim.sleep(srv.worker_fixed).await;
            execute_ascii_sharded(srv, cmd, widx, op).await
        }
    }
}

/// The single key a mutating ASCII command addresses, if it has one.
fn ascii_single_key(cmd: &Command) -> Option<&[u8]> {
    match cmd {
        Command::Store { key, .. }
        | Command::Cas { key, .. }
        | Command::Delete { key, .. }
        | Command::Incr { key, .. }
        | Command::Decr { key, .. }
        | Command::Touch { key, .. } => Some(key),
        _ => None,
    }
}

/// Sharded execution of one ASCII command: single-key commands lock only
/// their shard, multi-key reads visit their shards group by group, and
/// whole-store commands (flush, stats) serialize against every shard in
/// ascending order.
async fn execute_ascii_sharded(
    srv: &Rc<SrvInner>,
    cmd: Command,
    widx: u32,
    op: u64,
) -> (Response, bool) {
    let track = Track::Worker(widx);
    if let Some(shard) = ascii_single_key(&cmd).map(|k| srv.router.index(k)) {
        let _guards = srv.lock_shards([shard], 1, op, track).await;
        let now = srv.now_secs();
        let mut store = srv.store.borrow_mut();
        return execute_ascii(srv, &mut store, cmd, now);
    }
    let (keys, with_cas) = match cmd {
        Command::Get { keys } => (keys, false),
        Command::Gets { keys } => (keys, true),
        other => {
            let _guards = srv.lock_shards(0..srv.router.count(), 1, op, track).await;
            let now = srv.now_secs();
            let mut store = srv.store.borrow_mut();
            return execute_ascii(srv, &mut store, other, now);
        }
    };
    // Multi-key read: group by shard, lock and charge each group in
    // turn, and reassemble hits in request order (slots are indexed by
    // the key's original position).
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, k) in keys.iter().enumerate() {
        groups.entry(srv.router.index(k)).or_default().push(i);
    }
    let mut slots: Vec<Option<GetValue>> = (0..keys.len()).map(|_| None).collect();
    for (shard, idxs) in groups {
        let _guards = srv.lock_shards([shard], idxs.len(), op, track).await;
        let now = srv.now_secs();
        let mut store = srv.store.borrow_mut();
        for &i in &idxs {
            slots[i] = store.get(&keys[i], now).map(|v| GetValue {
                key: keys[i].clone(),
                flags: v.flags,
                cas: with_cas.then_some(v.cas),
                data: v.data,
            });
        }
        if let Some(obs) = srv.observatory.as_ref() {
            for &i in &idxs {
                let class = slots[i]
                    .as_ref()
                    .and_then(|v| store.class_of(keys[i].len(), v.data.len()));
                obs.observe_key(&keys[i], false, class);
            }
        }
        drop(store);
        srv.sync_mirrors();
    }
    (
        Response::Values(slots.into_iter().flatten().collect()),
        false,
    )
}

/// Executes one ASCII command against the store; shared by the TCP and
/// UDP service paths. Returns the response and the `noreply` flag.
fn execute_ascii(
    srv: &Rc<SrvInner>,
    store: &mut SegmentedStore,
    cmd: Command,
    now: u32,
) -> (Response, bool) {
    match cmd {
        Command::Store {
            verb,
            key,
            flags,
            exptime,
            data,
            noreply,
        } => {
            let outcome = match verb {
                StoreVerb::Set => store.set(&key, &data, flags, exptime, now),
                StoreVerb::Add => store.add(&key, &data, flags, exptime, now),
                StoreVerb::Replace => store.replace(&key, &data, flags, exptime, now),
                StoreVerb::Append => store.append(&key, &data, now),
                StoreVerb::Prepend => store.prepend(&key, &data, now),
            };
            if let Some(obs) = srv.observatory.as_ref() {
                obs.observe_key(&key, true, store.class_of(key.len(), data.len()));
            }
            (store_response(outcome), noreply)
        }
        Command::Cas {
            key,
            flags,
            exptime,
            cas,
            data,
            noreply,
        } => (
            store_response(store.cas(&key, &data, flags, exptime, cas, now)),
            noreply,
        ),
        Command::Get { keys } => {
            let values = fetch_values(store, &keys, now, false);
            observe_ascii_reads(srv, store, &keys, &values);
            (Response::Values(values), false)
        }
        Command::Gets { keys } => {
            let values = fetch_values(store, &keys, now, true);
            observe_ascii_reads(srv, store, &keys, &values);
            (Response::Values(values), false)
        }
        Command::Delete { key, noreply } => {
            let resp = if store.delete(&key, now) {
                Response::Deleted
            } else {
                Response::NotFound
            };
            (resp, noreply)
        }
        Command::Incr {
            key,
            delta,
            noreply,
        } => (numeric_response(store.incr(&key, delta, now)), noreply),
        Command::Decr {
            key,
            delta,
            noreply,
        } => (numeric_response(store.decr(&key, delta, now)), noreply),
        Command::Touch {
            key,
            exptime,
            noreply,
        } => {
            let resp = if store.touch(&key, exptime, now) {
                Response::Touched
            } else {
                Response::NotFound
            };
            (resp, noreply)
        }
        Command::FlushAll { delay, noreply } => {
            store.flush_all(now + delay);
            (Response::Ok, noreply)
        }
        Command::Stats { arg } => {
            let lines = match arg.as_deref() {
                Some(b"slabs") => store.slab_stat_lines(),
                Some(b"items") => store.item_stat_lines(),
                Some(b"trace") => trace_stat_lines(srv),
                Some(b"prom") => prom_stat_lines(srv, store),
                Some(b"hot") => hot_stat_lines(srv),
                Some(b"slo") => slo_stat_lines(srv),
                Some(b"exemplars") => exemplar_stat_lines(srv),
                Some(b"profile") => profile_stat_lines(srv),
                Some(b"reset") => {
                    srv.reset_all_stats(store);
                    vec![("reset".to_string(), "ok".to_string())]
                }
                Some(_) => Vec::new(), // unknown sub-report: bare END
                None => render_stats(srv, store)
                    .lines()
                    .map(|l| {
                        let mut it = l.splitn(2, ' ');
                        (
                            it.next().unwrap_or_default().to_string(),
                            it.next().unwrap_or_default().to_string(),
                        )
                    })
                    .collect(),
            };
            (Response::Stats(lines), false)
        }
        Command::Version => (Response::Version(SERVER_VERSION.to_string()), false),
        Command::Quit => (Response::Error, true), // handled by the reader
    }
}

fn store_response(o: SetOutcome) -> Response {
    match o {
        SetOutcome::Stored => Response::Stored,
        SetOutcome::NotStored => Response::NotStored,
        SetOutcome::Exists => Response::Exists,
        SetOutcome::NotFound => Response::NotFound,
        SetOutcome::TooLarge => Response::ServerError("object too large for cache".into()),
        SetOutcome::OutOfMemory => Response::ServerError("out of memory storing object".into()),
    }
}

/// Feeds ASCII-path GET keys into the observatory: hits carry the slab
/// class their value occupies, misses carry none.
fn observe_ascii_reads(
    srv: &SrvInner,
    store: &SegmentedStore,
    keys: &[Vec<u8>],
    values: &[GetValue],
) {
    let Some(obs) = srv.observatory.as_ref() else {
        return;
    };
    for k in keys {
        let class = values
            .iter()
            .find(|v| &v.key == k)
            .and_then(|v| store.class_of(k.len(), v.data.len()));
        obs.observe_key(k, false, class);
    }
}

fn fetch_values(
    store: &mut SegmentedStore,
    keys: &[Vec<u8>],
    now: u32,
    with_cas: bool,
) -> Vec<GetValue> {
    keys.iter()
        .filter_map(|k| {
            store.get(k, now).map(|v| GetValue {
                key: k.clone(),
                flags: v.flags,
                cas: with_cas.then_some(v.cas),
                data: v.data,
            })
        })
        .collect()
}

fn numeric_response(r: Result<u64, NumericError>) -> Response {
    match r {
        Ok(n) => Response::Number(n),
        Err(NumericError::NotFound) => Response::NotFound,
        Err(NumericError::NotNumeric) => {
            Response::ClientError("cannot increment or decrement non-numeric value".into())
        }
    }
}

/// Binary-protocol connection loop (frames instead of lines).
async fn conn_reader_bin(srv: Weak<SrvInner>, sock: Rc<Socket>, widx: usize, mut buf: Vec<u8>) {
    loop {
        match BinFrame::parse(&buf) {
            Ok(Some((frame, used))) => {
                buf.drain(..used);
                let Some(inner) = srv.upgrade() else { return };
                if !inner.running.get() {
                    sock.close();
                    return;
                }
                if frame.opcode == BinOpcode::Quit {
                    sock.close();
                    return;
                }
                inner
                    .stats
                    .sock_requests
                    .set(inner.stats.sock_requests.get() + 1);
                inner.span(|sp| sp.mark_open(Stage::RequestWire, inner.sim.now()));
                inner.tracer.instant_detail(
                    Layer::Core,
                    "dispatch",
                    inner.node,
                    Track::Main,
                    0,
                    0,
                    inner.sim.now(),
                );
                let _ = inner.workers[widx].send(WorkItem::SockBin {
                    sock: sock.clone(),
                    frame,
                });
            }
            Ok(None) => match sock.read(64 * 1024).await {
                Ok(bytes) => buf.extend_from_slice(&bytes),
                Err(_) => return,
            },
            Err(_) => {
                sock.close();
                return;
            }
        }
    }
}

// The store borrow is explicitly dropped before every await in this
// function (the lint cannot see through `drop()`).
#[allow(clippy::await_holding_refcell_ref)]
async fn serve_sock_bin(srv: &Rc<SrvInner>, sock: Rc<Socket>, frame: BinFrame, widx: u32) {
    srv.span(|sp| sp.mark_open(Stage::DispatchWait, srv.sim.now()));
    let op = srv.next_sock_op();
    srv.tracer.begin_detail(
        Layer::Core,
        "worker_service",
        srv.node,
        Track::Worker(widx),
        op,
        0,
        srv.sim.now(),
    );
    // Binary commands are all single-key (quiet multiget is a pipeline of
    // single-key frames), so locked models charge one hash lookup under
    // the owning shard's lock; flush and stats serialize everywhere.
    let mut guards = Vec::new();
    match srv.model {
        StoreModel::Idealized => srv.sim.sleep(srv.service_cost(1)).await,
        _ => {
            srv.sim.sleep(srv.worker_fixed).await;
            let shards: Vec<usize> = match frame.opcode {
                BinOpcode::Flush | BinOpcode::Stat => (0..srv.router.count()).collect(),
                _ => vec![srv.router.index(&frame.key)],
            };
            guards = srv.lock_shards(shards, 1, op, Track::Worker(widx)).await;
        }
    }
    let now = srv.now_secs();
    let mut store = srv.store.borrow_mut();
    let mut resp = BinFrame::response(&frame, BinStatus::Ok);
    let mut replies: Vec<BinFrame> = Vec::new();
    let mut quiet_suppress = false;

    match frame.opcode {
        BinOpcode::Get | BinOpcode::GetK | BinOpcode::GetQ | BinOpcode::GetKQ => {
            match store.get(&frame.key, now) {
                Some(v) => {
                    resp.extras = v.flags.to_be_bytes().to_vec();
                    resp.cas = v.cas;
                    resp.value = v.data;
                    if matches!(frame.opcode, BinOpcode::GetK | BinOpcode::GetKQ) {
                        resp.key = frame.key.clone();
                    }
                }
                None => {
                    if frame.opcode.is_quiet() {
                        quiet_suppress = true; // binary multiget: silent miss
                    } else {
                        resp.vbucket_or_status = BinStatus::KeyNotFound as u16;
                    }
                }
            }
            if let Some(obs) = srv.observatory.as_ref() {
                let class = (!resp.value.is_empty())
                    .then(|| store.class_of(frame.key.len(), resp.value.len()))
                    .flatten();
                obs.observe_key(&frame.key, false, class);
            }
        }
        BinOpcode::Set | BinOpcode::Add | BinOpcode::Replace => {
            let Some((flags, exptime)) = mcproto::parse_store_extras(&frame.extras) else {
                resp.vbucket_or_status = BinStatus::InvalidArgs as u16;
                drop(store);
                guards.clear();
                srv.tracer.end_detail(
                    Layer::Core,
                    "worker_service",
                    srv.node,
                    Track::Worker(widx),
                    op,
                    0,
                    srv.sim.now(),
                );
                reply_bin(&sock, srv, vec![resp]).await;
                return;
            };
            let outcome = if frame.cas != 0 {
                store.cas(&frame.key, &frame.value, flags, exptime, frame.cas, now)
            } else {
                match frame.opcode {
                    BinOpcode::Set => store.set(&frame.key, &frame.value, flags, exptime, now),
                    BinOpcode::Add => store.add(&frame.key, &frame.value, flags, exptime, now),
                    _ => store.replace(&frame.key, &frame.value, flags, exptime, now),
                }
            };
            resp.vbucket_or_status = bin_status(outcome) as u16;
            if outcome == SetOutcome::Stored {
                // Return the fresh CAS, as real servers do.
                if let Some(v) = store.get(&frame.key, now) {
                    resp.cas = v.cas;
                }
            }
            if let Some(obs) = srv.observatory.as_ref() {
                obs.observe_key(
                    &frame.key,
                    true,
                    store.class_of(frame.key.len(), frame.value.len()),
                );
            }
        }
        BinOpcode::Append | BinOpcode::Prepend => {
            let outcome = if frame.opcode == BinOpcode::Append {
                store.append(&frame.key, &frame.value, now)
            } else {
                store.prepend(&frame.key, &frame.value, now)
            };
            resp.vbucket_or_status = bin_status(outcome) as u16;
        }
        BinOpcode::Delete => {
            if !store.delete(&frame.key, now) {
                resp.vbucket_or_status = BinStatus::KeyNotFound as u16;
            }
        }
        BinOpcode::Increment | BinOpcode::Decrement => {
            let Some((delta, initial, exptime)) = mcproto::parse_arith_extras(&frame.extras) else {
                resp.vbucket_or_status = BinStatus::InvalidArgs as u16;
                drop(store);
                guards.clear();
                srv.tracer.end_detail(
                    Layer::Core,
                    "worker_service",
                    srv.node,
                    Track::Worker(widx),
                    op,
                    0,
                    srv.sim.now(),
                );
                reply_bin(&sock, srv, vec![resp]).await;
                return;
            };
            let up = frame.opcode == BinOpcode::Increment;
            let result = if up {
                store.incr(&frame.key, delta, now)
            } else {
                store.decr(&frame.key, delta, now)
            };
            match result {
                Ok(n) => resp.value = n.to_be_bytes().to_vec(),
                Err(NumericError::NotFound) if exptime != u32::MAX => {
                    // Spec: create with the initial value unless exptime
                    // is all-ones.
                    store.set(&frame.key, initial.to_string().as_bytes(), 0, exptime, now);
                    resp.value = initial.to_be_bytes().to_vec();
                }
                Err(NumericError::NotFound) => {
                    resp.vbucket_or_status = BinStatus::KeyNotFound as u16;
                }
                Err(NumericError::NotNumeric) => {
                    resp.vbucket_or_status = BinStatus::NonNumeric as u16;
                }
            }
        }
        BinOpcode::Touch => {
            let exptime = frame
                .extras
                .as_slice()
                .try_into()
                .ok()
                .map(u32::from_be_bytes);
            match exptime {
                Some(e) if store.touch(&frame.key, e, now) => {}
                Some(_) => resp.vbucket_or_status = BinStatus::KeyNotFound as u16,
                None => resp.vbucket_or_status = BinStatus::InvalidArgs as u16,
            }
        }
        BinOpcode::Flush => {
            // Extras carry the optional delay; anything but exactly 4
            // bytes means "now".
            let delay = frame
                .extras
                .as_slice()
                .try_into()
                .map(u32::from_be_bytes)
                .unwrap_or(0);
            store.flush_all(now + delay);
        }
        BinOpcode::Noop => {}
        BinOpcode::Version => {
            resp.value = SERVER_VERSION.as_bytes().to_vec();
        }
        BinOpcode::Stat => {
            // One frame per statistic, terminated by an empty frame.
            for line in render_stats(srv, &store).lines() {
                let mut it = line.splitn(2, ' ');
                let name = it.next().unwrap_or_default();
                let value = it.next().unwrap_or_default();
                let mut f = BinFrame::response(&frame, BinStatus::Ok);
                f.key = name.as_bytes().to_vec();
                f.value = value.as_bytes().to_vec();
                replies.push(f);
            }
        }
        BinOpcode::Quit => return,
    }
    drop(store);
    srv.sync_mirrors();
    guards.clear();
    srv.tracer.end_detail(
        Layer::Core,
        "worker_service",
        srv.node,
        Track::Worker(widx),
        op,
        0,
        srv.sim.now(),
    );
    if !quiet_suppress {
        replies.push(resp);
        reply_bin(&sock, srv, replies).await;
    }
}

async fn reply_bin(sock: &Rc<Socket>, srv: &Rc<SrvInner>, frames: Vec<BinFrame>) {
    srv.span(|sp| sp.mark_open(Stage::WorkerService, srv.sim.now()));
    let mut wire = Vec::new();
    for f in frames {
        wire.extend_from_slice(&f.encode());
    }
    let _ = sock.write_all(&wire).await;
}

fn bin_status(o: SetOutcome) -> BinStatus {
    match o {
        SetOutcome::Stored => BinStatus::Ok,
        SetOutcome::NotStored => BinStatus::NotStored,
        SetOutcome::Exists => BinStatus::KeyExists,
        SetOutcome::NotFound => BinStatus::KeyNotFound,
        SetOutcome::TooLarge => BinStatus::TooLarge,
        SetOutcome::OutOfMemory => BinStatus::OutOfMemory,
    }
}

/// UDP receive loop: one task per (stack, port). Requests must fit a
/// single datagram (as in real memcached); responses are fragmented with
/// the 8-byte UDP frame header. Connectionless, so requests round-robin
/// over workers individually.
async fn udp_receiver(srv: Weak<SrvInner>, sock: Rc<DgramSocket>) {
    loop {
        let Ok((src, datagram)) = sock.recv_from().await else {
            return;
        };
        let Some(inner) = srv.upgrade() else { return };
        if !inner.running.get() {
            return;
        }
        let Ok((frame, payload)) = UdpFrame::decode(&datagram) else {
            continue;
        };
        if frame.total != 1 {
            continue; // multi-datagram requests are not supported
        }
        let Ok(Some((cmd, _))) = parse_command(payload) else {
            continue;
        };
        if matches!(cmd, Command::Quit) {
            continue; // meaningless without a connection
        }
        inner
            .stats
            .sock_requests
            .set(inner.stats.sock_requests.get() + 1);
        let widx = inner.next_worker();
        let _ = inner.workers[widx].send(WorkItem::SockUdp {
            sock: sock.clone(),
            src,
            request_id: frame.request_id,
            cmd,
        });
    }
}

async fn serve_sock_udp(
    srv: &Rc<SrvInner>,
    sock: Rc<DgramSocket>,
    src: socksim::SocketAddr,
    request_id: u16,
    cmd: Command,
    widx: u32,
) {
    let op = srv.next_sock_op();
    let (resp, noreply) = execute_ascii_timed(srv, cmd, widx, op).await;
    srv.sync_mirrors();
    if noreply {
        return;
    }
    let wire = encode_response(&resp);
    for datagram in udp_fragment(request_id, &wire) {
        let _ = sock.send_to(src, &datagram).await;
    }
}
