//! Testbed assembly: one object wiring the cluster, the InfiniBand fabric
//! view, and the socket fabric together, so examples and benchmarks can
//! say "give me Cluster A" and start placing servers and clients.

use std::rc::Rc;

use simnet::{Cluster, ClusterProfile, NetKind, NodeId, Sim};
use socksim::SockFabric;
use verbs::IbFabric;

/// A fully wired simulated testbed.
pub struct World {
    /// The cluster (nodes, links, profile).
    pub cluster: Rc<Cluster>,
    /// InfiniBand fabric view (verbs/UCR traffic).
    pub ib: IbFabric,
    /// RoCE fabric view (verbs over converged Ethernet), when the
    /// cluster's Ethernet adapters have an RDMA engine (paper SVII).
    pub roce: Option<IbFabric>,
    /// Byte-stream transports (the sockets baseline).
    pub socks: SockFabric,
}

impl World {
    /// Builds a world over an existing cluster.
    pub fn new(cluster: Rc<Cluster>) -> World {
        World {
            ib: IbFabric::new(cluster.clone()),
            roce: IbFabric::new_on(cluster.clone(), NetKind::TenGigE),
            socks: SockFabric::new(cluster.clone()),
            cluster,
        }
    }

    /// Cluster A (Clovertown + ConnectX DDR + 10GigE-TOE + 1GigE).
    pub fn cluster_a(seed: u64, nodes: u32) -> World {
        World::new(Rc::new(Cluster::cluster_a(seed, nodes)))
    }

    /// Cluster B (Westmere + ConnectX QDR).
    pub fn cluster_b(seed: u64, nodes: u32) -> World {
        World::new(Rc::new(Cluster::cluster_b(seed, nodes)))
    }

    /// The simulation engine.
    pub fn sim(&self) -> &Sim {
        self.cluster.sim()
    }

    /// The hardware/cost profile in force.
    pub fn profile(&self) -> &ClusterProfile {
        self.cluster.profile()
    }

    /// Crashes a node across every transport: its IB stack dies (UCR
    /// endpoints fail) and its sockets reset.
    pub fn crash_node(&self, node: NodeId) {
        self.ib.open(node).kill();
        if let Some(roce) = &self.roce {
            roce.open(node).kill();
        }
        self.socks.kill_node(node);
    }
}
