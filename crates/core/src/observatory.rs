//! The server-side workload observatory: what is the traffic doing, and
//! which ops are hurting.
//!
//! End-of-run aggregates say *how much*; the health monitor says *when*
//! it went wrong. This module answers the remaining questions the
//! ROADMAP's sharding and self-tuning work need as input:
//!
//! * **Which keys** — every keyed request feeds a space-bounded
//!   count-min sketch plus a space-saving top-K tracker
//!   ([`simnet::sketch`]), giving per-node hot-key tables with estimated
//!   counts and hard error bounds, hash-slot (future-shard) load
//!   imbalance, and read/write mix per slab class.
//! * **Which requests** — worker service times land in per-op registry
//!   histograms; a completion above the configured quantile of its own
//!   histogram is captured as an [`Exemplar`](simnet::Exemplar) whose
//!   `span_id` is the request id, so the tail sample links directly to
//!   its cross-layer trace spans.
//! * **Which objectives** — per-op [`SloTracker`]s judge every service
//!   completion against declared latency targets; rolling compliance and
//!   error-budget burn feed the sampler and the health monitor's
//!   budget-burn rule.
//!
//! Everything here is host-side accounting on the simulation's real
//! execution path: feeding the observatory costs **zero virtual time**,
//! so an instrumented run is clock-identical to a bare one. The
//! observatory is opt-in ([`McServerConfig::observatory`]
//! (crate::McServerConfig)); a server without one registers no new
//! metrics and renders byte-identical stats.
//!
//! Socket-family requests contribute key telemetry; service-time
//! exemplars and SLO compliance are tracked on the UCR (RDMA) path,
//! where the paper's evaluation — and our per-op service histograms —
//! live.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use mcstore::ClassId;
use simnet::metrics::{Histogram, Metrics, STAGE_COUNT};
use simnet::sketch::{hash_key, SketchConfig, WorkloadSketch};
use simnet::{ExemplarConfig, ExemplarRing, SimDuration, SimTime, SloSpec, SloTracker};

/// One declared per-op objective (becomes a [`SloTracker`] named
/// `slo.node<N>.<op>`).
#[derive(Clone, Debug)]
pub struct SloObjective {
    /// [`McOp::label`](crate::McOp::label) of the op this objective
    /// covers (`"get"`, `"set"`, …).
    pub op: &'static str,
    /// Worker service-time target: an op is good at or under this.
    pub latency_target: SimDuration,
    /// Required good fraction (e.g. `0.999`).
    pub objective: f64,
    /// Rolling virtual-time window compliance is judged over.
    pub window: SimDuration,
}

/// Workload-observatory configuration.
#[derive(Clone, Debug, Default)]
pub struct ObservatoryConfig {
    /// Count-min / top-K / hash-slot sizing.
    pub sketch: SketchConfig,
    /// Exemplar ring capacity and capture quantile.
    pub exemplars: ExemplarConfig,
    /// Per-op service-level objectives (empty = no SLO tracking).
    pub slos: Vec<SloObjective>,
}

/// Cached registry-counter handles for one slab class's read/write mix.
struct ClassMix {
    reads: Rc<simnet::metrics::Counter>,
    writes: Rc<simnet::metrics::Counter>,
}

/// Per-server workload telemetry: key sketch, service exemplars, SLO
/// trackers, and the registry gauges/counters that expose them.
pub struct WorkloadObservatory {
    node_ord: u32,
    metrics: Rc<Metrics>,
    sketch: RefCell<WorkloadSketch>,
    ring: Rc<ExemplarRing>,
    slos: Vec<(&'static str, Rc<SloTracker>)>,
    svc_hists: RefCell<HashMap<&'static str, (String, Rc<Histogram>)>>,
    class_mix: RefCell<HashMap<u8, ClassMix>>,
    imbalance_gauge: Rc<simnet::metrics::Gauge>,
    coverage_gauge: Rc<simnet::metrics::Gauge>,
    active_gauge: Rc<simnet::metrics::Gauge>,
}

impl WorkloadObservatory {
    /// Builds the observatory for the server on node ordinal `node_ord`,
    /// registering its gauges in `metrics`.
    pub fn new(
        cfg: &ObservatoryConfig,
        node_ord: u32,
        metrics: &Rc<Metrics>,
    ) -> Rc<WorkloadObservatory> {
        let slos = cfg
            .slos
            .iter()
            .map(|o| {
                (
                    o.op,
                    SloTracker::new(SloSpec {
                        name: format!("slo.node{node_ord}.{}", o.op),
                        latency_target: o.latency_target,
                        objective: o.objective,
                        window: o.window,
                    }),
                )
            })
            .collect();
        Rc::new(WorkloadObservatory {
            node_ord,
            metrics: metrics.clone(),
            sketch: RefCell::new(WorkloadSketch::new(cfg.sketch)),
            ring: ExemplarRing::new(cfg.exemplars),
            slos,
            svc_hists: RefCell::new(HashMap::new()),
            class_mix: RefCell::new(HashMap::new()),
            imbalance_gauge: metrics.gauge(&format!("mc.node{node_ord}.wl.slot_imbalance")),
            coverage_gauge: metrics.gauge(&format!("mc.node{node_ord}.wl.hot_coverage")),
            active_gauge: metrics.gauge(&format!("mc.node{node_ord}.wl.slots_active")),
        })
    }

    /// The tail-exemplar ring (shareable with a health monitor so
    /// Degraded episodes freeze its contents).
    pub fn ring(&self) -> Rc<ExemplarRing> {
        self.ring.clone()
    }

    /// The SLO tracker for `op`, if one was declared.
    pub fn slo(&self, op: &str) -> Option<Rc<SloTracker>> {
        self.slos
            .iter()
            .find(|(label, _)| *label == op)
            .map(|(_, t)| t.clone())
    }

    /// All declared SLO trackers (bind them into a
    /// [`MonitorBinding`](simnet::MonitorBinding)).
    pub fn slo_trackers(&self) -> Vec<Rc<SloTracker>> {
        self.slos.iter().map(|(_, t)| t.clone()).collect()
    }

    /// Feeds one keyed request into the sketch and the per-class
    /// read/write mix. `class` is where the item lands in slab memory
    /// (unknown for misses).
    pub fn observe_key(&self, key: &[u8], is_write: bool, class: Option<ClassId>) {
        self.sketch.borrow_mut().observe(key, is_write);
        if let Some(c) = class {
            let mut mix = self.class_mix.borrow_mut();
            let m = mix.entry(c.0).or_insert_with(|| {
                let node = self.node_ord;
                ClassMix {
                    reads: self
                        .metrics
                        .counter(&format!("mc.node{node}.wl.class{}.reads", c.0)),
                    writes: self
                        .metrics
                        .counter(&format!("mc.node{node}.wl.class{}.writes", c.0)),
                }
            });
            if is_write {
                m.writes.inc();
            } else {
                m.reads.inc();
            }
        }
    }

    /// Feeds one completed UCR service: records the service time into
    /// the op's registry histogram, judges the declared SLO, and offers
    /// the completion to the exemplar gate (span id = request id).
    pub fn observe_service(
        &self,
        op: &'static str,
        key: &[u8],
        bytes: u64,
        service: SimDuration,
        req_id: u64,
        at: SimTime,
    ) {
        let (name, hist) = {
            let mut hists = self.svc_hists.borrow_mut();
            let entry = hists.entry(op).or_insert_with(|| {
                let name = format!("mc.node{}.svc.{op}", self.node_ord);
                (name.clone(), self.metrics.histogram(&name))
            });
            entry.clone()
        };
        hist.record(service);
        if let Some(slo) = self.slo(op) {
            slo.record(service, at);
        }
        self.ring.offer(
            &hist,
            &name,
            op,
            hash_key(key),
            bytes,
            service,
            req_id,
            [SimDuration::default(); STAGE_COUNT],
            at,
        );
    }

    /// Publishes the sketch-derived gauges (called before a metrics
    /// export alongside the other observability gauges).
    pub fn refresh_gauges(&self) {
        let sketch = self.sketch.borrow();
        self.imbalance_gauge.set(sketch.slot_imbalance());
        self.coverage_gauge.set(sketch.hot_coverage());
        self.active_gauge.set(sketch.slots_active() as f64);
    }

    /// The `stats hot` sub-report: sketch totals, slot balance, and the
    /// top-K hot-key table with estimated counts, error bounds, and
    /// estimated rates over the run so far.
    pub fn hot_stat_lines(&self, now: SimTime) -> Vec<(String, String)> {
        let sketch = self.sketch.borrow();
        let secs = now.as_secs_f64();
        let mut lines = vec![
            ("wl.total".to_string(), sketch.total().to_string()),
            ("wl.reads".to_string(), sketch.reads().to_string()),
            ("wl.writes".to_string(), sketch.writes().to_string()),
            ("wl.err_bound".to_string(), sketch.error_bound().to_string()),
            (
                "wl.slot_imbalance".to_string(),
                format!("{:.3}", sketch.slot_imbalance()),
            ),
            (
                "wl.slots_active".to_string(),
                sketch.slots_active().to_string(),
            ),
            (
                "wl.hot_coverage".to_string(),
                format!("{:.3}", sketch.hot_coverage()),
            ),
        ];
        for (rank, h) in sketch.hot().iter().enumerate() {
            let key = String::from_utf8_lossy(&h.key).into_owned();
            lines.push((format!("hot.{rank}.key"), key));
            lines.push((format!("hot.{rank}.est"), h.count.to_string()));
            lines.push((format!("hot.{rank}.err"), h.err.to_string()));
            lines.push((format!("hot.{rank}.reads"), h.reads.to_string()));
            lines.push((format!("hot.{rank}.writes"), h.writes.to_string()));
            let rate = if secs > 0.0 {
                h.count as f64 / secs
            } else {
                0.0
            };
            lines.push((format!("hot.{rank}.rate_per_sec"), format!("{rate:.1}")));
        }
        lines
    }

    /// The `stats slo` sub-report: per-objective spec, lifetime good/bad
    /// counts, and rolling compliance/burn at `now`.
    pub fn slo_stat_lines(&self, now: SimTime) -> Vec<(String, String)> {
        let mut lines = Vec::new();
        for (op, t) in &self.slos {
            let spec = t.spec();
            let put = |lines: &mut Vec<(String, String)>, k: &str, v: String| {
                lines.push((format!("slo.{op}.{k}"), v));
            };
            put(
                &mut lines,
                "target_us",
                format!("{:.3}", spec.latency_target.as_micros_f64()),
            );
            put(&mut lines, "objective", format!("{}", spec.objective));
            put(
                &mut lines,
                "window_us",
                format!("{:.3}", spec.window.as_micros_f64()),
            );
            put(&mut lines, "good", t.good().to_string());
            put(&mut lines, "bad", t.bad().to_string());
            put(
                &mut lines,
                "compliance",
                format!("{:.6}", t.compliance(now)),
            );
            put(&mut lines, "burn", format!("{:.3}", t.burn_rate(now)));
        }
        lines
    }

    /// The `stats exemplars` sub-report: gate counters plus one line per
    /// held record.
    pub fn exemplar_stat_lines(&self) -> Vec<(String, String)> {
        let mut lines = vec![
            ("exemplars.seen".to_string(), self.ring.seen().to_string()),
            (
                "exemplars.captured".to_string(),
                self.ring.captured().to_string(),
            ),
            (
                "exemplars.dropped".to_string(),
                self.ring.dropped().to_string(),
            ),
            ("exemplars.len".to_string(), self.ring.len().to_string()),
        ];
        for (i, e) in self.ring.snapshot().iter().enumerate() {
            lines.push((
                format!("exemplar.{i}"),
                format!(
                    "op={} hist={} span={} key=0x{:016x} bytes={} latency_us={:.3} \
                     threshold_us={:.3} at_us={:.3}",
                    e.op,
                    e.hist,
                    e.span_id,
                    e.key_hash,
                    e.bytes,
                    e.latency.as_micros_f64(),
                    e.threshold.as_micros_f64(),
                    e.at.as_micros_f64(),
                ),
            ));
        }
        lines
    }

    /// `stats reset` semantics: clears the sketch, the exemplar ring,
    /// and every SLO window/total. Gauges (and their watermarks) are
    /// levels and survive, mirroring the registry-wide reset rules.
    pub fn reset(&self) {
        self.sketch.borrow_mut().reset();
        self.ring.reset();
        for (_, t) in &self.slos {
            t.reset();
        }
    }
}
