//! Active-message application headers for Memcached-over-UCR (paper §V).
//!
//! Where the sockets baseline re-frames every request through the ASCII
//! byte stream, the UCR design sends a typed header (this module) as the
//! active-message header and the value as the active-message data. The
//! client's counter id travels in the request header (AM 1); the server
//! names that counter as the *target counter* of its response (AM 2), so
//! the client's blocking wait is exactly the paper's Figure in §V-B/§V-C.

/// Active-message id for client→server requests.
pub const MSG_MC_REQ: u16 = 0x10;
/// Active-message id for server→client responses.
pub const MSG_MC_RESP: u16 = 0x11;
/// Active-message id for client→server item-directory lookups (bypass
/// get): "where does this key live in slab memory right now?".
pub const MSG_MC_DIR_REQ: u16 = 0x12;
/// Active-message id for server→client item-directory answers.
pub const MSG_MC_DIR_RESP: u16 = 0x13;

/// Width of the seqlock version word a bypass descriptor's window ends
/// with: the server mirrors each slab chunk with the item's version in
/// the chunk's last 8 bytes, so one RDMA read returns value bytes *and*
/// the version to validate them against.
pub const BYPASS_VERSION_BYTES: usize = 8;

/// Memcached operation codes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum McOp {
    /// Fetch one key.
    Get = 1,
    /// Fetch many keys in one request.
    Mget = 2,
    /// Unconditional store.
    Set = 3,
    /// Store if absent.
    Add = 4,
    /// Store if present.
    Replace = 5,
    /// Append to existing value.
    Append = 6,
    /// Prepend to existing value.
    Prepend = 7,
    /// Compare-and-store.
    Cas = 8,
    /// Remove a key.
    Delete = 9,
    /// Increment a decimal value.
    Incr = 10,
    /// Decrement a decimal value.
    Decr = 11,
    /// Refresh expiration.
    Touch = 12,
    /// Invalidate everything.
    FlushAll = 13,
    /// Server version string.
    Version = 14,
    /// Statistics snapshot.
    Stats = 15,
}

impl McOp {
    /// Stable lowercase name, used for per-operation statistics keys
    /// (`op.get.service_us` …) and trace labels.
    pub fn label(self) -> &'static str {
        match self {
            McOp::Get => "get",
            McOp::Mget => "mget",
            McOp::Set => "set",
            McOp::Add => "add",
            McOp::Replace => "replace",
            McOp::Append => "append",
            McOp::Prepend => "prepend",
            McOp::Cas => "cas",
            McOp::Delete => "delete",
            McOp::Incr => "incr",
            McOp::Decr => "decr",
            McOp::Touch => "touch",
            McOp::FlushAll => "flush_all",
            McOp::Version => "version",
            McOp::Stats => "stats",
        }
    }

    fn from_u8(v: u8) -> Option<McOp> {
        Some(match v {
            1 => McOp::Get,
            2 => McOp::Mget,
            3 => McOp::Set,
            4 => McOp::Add,
            5 => McOp::Replace,
            6 => McOp::Append,
            7 => McOp::Prepend,
            8 => McOp::Cas,
            9 => McOp::Delete,
            10 => McOp::Incr,
            11 => McOp::Decr,
            12 => McOp::Touch,
            13 => McOp::FlushAll,
            14 => McOp::Version,
            15 => McOp::Stats,
            _ => return None,
        })
    }
}

/// Response status codes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum RespStatus {
    /// get hit / operation succeeded with data.
    Hit = 1,
    /// get miss.
    Miss = 2,
    /// Stored.
    Stored = 3,
    /// Not stored (add/replace/append/prepend precondition failed).
    NotStored = 4,
    /// CAS mismatch.
    Exists = 5,
    /// Key not found (delete/incr/cas).
    NotFound = 6,
    /// Numeric result attached (incr/decr).
    Number = 7,
    /// Item exceeded the largest slab chunk.
    TooLarge = 8,
    /// Allocation failed.
    OutOfMemory = 9,
    /// Value is not numeric.
    NotNumeric = 10,
    /// Generic OK (flush_all, touch).
    Ok = 11,
}

impl RespStatus {
    fn from_u8(v: u8) -> Option<RespStatus> {
        Some(match v {
            1 => RespStatus::Hit,
            2 => RespStatus::Miss,
            3 => RespStatus::Stored,
            4 => RespStatus::NotStored,
            5 => RespStatus::Exists,
            6 => RespStatus::NotFound,
            7 => RespStatus::Number,
            8 => RespStatus::TooLarge,
            9 => RespStatus::OutOfMemory,
            10 => RespStatus::NotNumeric,
            11 => RespStatus::Ok,
            _ => return None,
        })
    }
}

/// A request header (AM 1). Keys ride in the header; the value (for
/// storage ops) is the active-message data, so a large `set` goes through
/// UCR's RDMA-read rendezvous without touching the header path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReqHeader {
    /// Operation.
    pub op: McOp,
    /// Client-chosen request id, echoed in the response.
    pub req_id: u64,
    /// Client counter the server must target in its response.
    pub ctr_id: u64,
    /// Opaque item flags (storage ops).
    pub flags: u32,
    /// Expiration (storage ops, touch).
    pub exptime: u32,
    /// CAS token (cas op).
    pub cas: u64,
    /// Delta (incr/decr).
    pub delta: u64,
    /// Keys (one for most ops; many for mget).
    pub keys: Vec<Vec<u8>>,
}

impl ReqHeader {
    /// A header with the common fields zeroed.
    pub fn new(op: McOp, req_id: u64, ctr_id: u64, key: Vec<u8>) -> ReqHeader {
        ReqHeader {
            op,
            req_id,
            ctr_id,
            flags: 0,
            exptime: 0,
            cas: 0,
            delta: 0,
            keys: vec![key],
        }
    }

    /// Serializes to the AM header layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(44 + self.keys.iter().map(|k| 2 + k.len()).sum::<usize>());
        out.push(self.op as u8);
        out.push(0);
        out.extend_from_slice(&(self.keys.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.req_id.to_le_bytes());
        out.extend_from_slice(&self.ctr_id.to_le_bytes());
        out.extend_from_slice(&self.flags.to_le_bytes());
        out.extend_from_slice(&self.exptime.to_le_bytes());
        out.extend_from_slice(&self.cas.to_le_bytes());
        out.extend_from_slice(&self.delta.to_le_bytes());
        for k in &self.keys {
            out.extend_from_slice(&(k.len() as u16).to_le_bytes());
            out.extend_from_slice(k);
        }
        out
    }

    /// Deserializes; `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<ReqHeader> {
        if b.len() < 44 {
            return None;
        }
        let op = McOp::from_u8(b[0])?;
        let nkeys = u16::from_le_bytes(b[2..4].try_into().ok()?) as usize;
        let req_id = u64::from_le_bytes(b[4..12].try_into().ok()?);
        let ctr_id = u64::from_le_bytes(b[12..20].try_into().ok()?);
        let flags = u32::from_le_bytes(b[20..24].try_into().ok()?);
        let exptime = u32::from_le_bytes(b[24..28].try_into().ok()?);
        let cas = u64::from_le_bytes(b[28..36].try_into().ok()?);
        let delta = u64::from_le_bytes(b[36..44].try_into().ok()?);
        let mut keys = Vec::with_capacity(nkeys);
        let mut pos = 44usize;
        for _ in 0..nkeys {
            if b.len() < pos + 2 {
                return None;
            }
            let klen = u16::from_le_bytes(b[pos..pos + 2].try_into().ok()?) as usize;
            pos += 2;
            if b.len() < pos + klen {
                return None;
            }
            keys.push(b[pos..pos + klen].to_vec());
            pos += klen;
        }
        Some(ReqHeader {
            op,
            req_id,
            ctr_id,
            flags,
            exptime,
            cas,
            delta,
            keys,
        })
    }
}

/// A response header (AM 2). The value rides as active-message data; the
/// client learns its size from the AM framing before allocating — the
/// paper's get flow (§V-C).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RespHeader {
    /// Echo of the request id.
    pub req_id: u64,
    /// Outcome.
    pub status: RespStatus,
    /// Item flags (get).
    pub flags: u32,
    /// CAS token (gets-style fetch).
    pub cas: u64,
    /// Numeric result (incr/decr).
    pub number: u64,
    /// Number of entries in a multi-get payload.
    pub nvalues: u16,
}

impl RespHeader {
    /// Serializes to the AM header layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.push(self.status as u8);
        out.push(0);
        out.extend_from_slice(&self.nvalues.to_le_bytes());
        out.extend_from_slice(&self.req_id.to_le_bytes());
        out.extend_from_slice(&self.flags.to_le_bytes());
        out.extend_from_slice(&self.cas.to_le_bytes());
        out.extend_from_slice(&self.number.to_le_bytes());
        out
    }

    /// Deserializes; `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<RespHeader> {
        if b.len() < 32 {
            return None;
        }
        Some(RespHeader {
            status: RespStatus::from_u8(b[0])?,
            nvalues: u16::from_le_bytes(b[2..4].try_into().ok()?),
            req_id: u64::from_le_bytes(b[4..12].try_into().ok()?),
            flags: u32::from_le_bytes(b[12..16].try_into().ok()?),
            cas: u64::from_le_bytes(b[16..24].try_into().ok()?),
            number: u64::from_le_bytes(b[24..32].try_into().ok()?),
        })
    }
}

/// An item-directory request (bypass get): resolve `key` to a location
/// descriptor. Served inline by the server's AM handler — no worker
/// dispatch — so descriptor fetches never wake the server's CPU path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DirReq {
    /// Client-chosen request id, echoed in the response.
    pub req_id: u64,
    /// Client counter the server must target in its response.
    pub ctr_id: u64,
    /// The key to resolve.
    pub key: Vec<u8>,
}

impl DirReq {
    /// Serializes to the AM header layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(18 + self.key.len());
        out.extend_from_slice(&self.req_id.to_le_bytes());
        out.extend_from_slice(&self.ctr_id.to_le_bytes());
        out.extend_from_slice(&(self.key.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.key);
        out
    }

    /// Deserializes; `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<DirReq> {
        if b.len() < 18 {
            return None;
        }
        let req_id = u64::from_le_bytes(b[..8].try_into().ok()?);
        let ctr_id = u64::from_le_bytes(b[8..16].try_into().ok()?);
        let klen = u16::from_le_bytes(b[16..18].try_into().ok()?) as usize;
        if b.len() < 18 + klen {
            return None;
        }
        Some(DirReq {
            req_id,
            ctr_id,
            key: b[18..18 + klen].to_vec(),
        })
    }
}

/// An item-directory answer: the RFP-style location descriptor. `found`
/// false means the key is absent (or dead) — the client should fall back
/// to the AM get path. The advertised window covers
/// `[chunk_base + klen, chunk_base + chunk_size)` of the server's mirror
/// page: the value is its first `vlen` bytes and the chunk's seqlock
/// version word is its trailing 8 bytes, so one RDMA read fetches both.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DirResp {
    /// Echo of the request id.
    pub req_id: u64,
    /// Whether the key resolved to a live item.
    pub found: bool,
    /// Server node owning the mirror page.
    pub node: u32,
    /// rkey of the registered mirror page.
    pub rkey: u32,
    /// Window start within the mirror region.
    pub offset: u64,
    /// Window length (value + slack + trailing version word).
    pub len: u64,
    /// Value length: the window's first `vlen` bytes.
    pub vlen: u32,
    /// Item flags.
    pub flags: u32,
    /// CAS token at lookup time.
    pub cas: u64,
    /// Absolute expiry (unix seconds); 0 = never. The client re-checks
    /// this locally before every bypass read.
    pub exp: u32,
    /// Chunk seqlock version the read must match.
    pub version: u64,
}

impl DirResp {
    /// A "not found" answer for `req_id`.
    pub fn miss(req_id: u64) -> DirResp {
        DirResp {
            req_id,
            found: false,
            node: 0,
            rkey: 0,
            offset: 0,
            len: 0,
            vlen: 0,
            flags: 0,
            cas: 0,
            exp: 0,
            version: 0,
        }
    }

    /// Serializes to the AM header layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(61);
        out.push(self.found as u8);
        out.extend_from_slice(&self.req_id.to_le_bytes());
        out.extend_from_slice(&self.node.to_le_bytes());
        out.extend_from_slice(&self.rkey.to_le_bytes());
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&self.vlen.to_le_bytes());
        out.extend_from_slice(&self.flags.to_le_bytes());
        out.extend_from_slice(&self.cas.to_le_bytes());
        out.extend_from_slice(&self.exp.to_le_bytes());
        out.extend_from_slice(&self.version.to_le_bytes());
        out
    }

    /// Deserializes; `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<DirResp> {
        if b.len() < 61 {
            return None;
        }
        Some(DirResp {
            found: b[0] != 0,
            req_id: u64::from_le_bytes(b[1..9].try_into().ok()?),
            node: u32::from_le_bytes(b[9..13].try_into().ok()?),
            rkey: u32::from_le_bytes(b[13..17].try_into().ok()?),
            offset: u64::from_le_bytes(b[17..25].try_into().ok()?),
            len: u64::from_le_bytes(b[25..33].try_into().ok()?),
            vlen: u32::from_le_bytes(b[33..37].try_into().ok()?),
            flags: u32::from_le_bytes(b[37..41].try_into().ok()?),
            cas: u64::from_le_bytes(b[41..49].try_into().ok()?),
            exp: u32::from_le_bytes(b[49..53].try_into().ok()?),
            version: u64::from_le_bytes(b[53..61].try_into().ok()?),
        })
    }
}

/// One entry in a multi-get payload: `[klen u16][key][flags u32][cas u64]
/// [vlen u32][value]`.
pub fn encode_mget_entry(out: &mut Vec<u8>, key: &[u8], flags: u32, cas: u64, value: &[u8]) {
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&cas.to_le_bytes());
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(value);
}

/// One decoded multi-get entry: `(key, flags, cas, value)`.
pub type MgetEntry = (Vec<u8>, u32, u64, Vec<u8>);

/// Decodes a multi-get payload into `(key, flags, cas, value)` tuples.
pub fn decode_mget_entries(mut b: &[u8], n: usize) -> Option<Vec<MgetEntry>> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if b.len() < 2 {
            return None;
        }
        let klen = u16::from_le_bytes(b[..2].try_into().ok()?) as usize;
        b = &b[2..];
        if b.len() < klen + 16 {
            return None;
        }
        let key = b[..klen].to_vec();
        b = &b[klen..];
        let flags = u32::from_le_bytes(b[..4].try_into().ok()?);
        let cas = u64::from_le_bytes(b[4..12].try_into().ok()?);
        let vlen = u32::from_le_bytes(b[12..16].try_into().ok()?) as usize;
        b = &b[16..];
        if b.len() < vlen {
            return None;
        }
        out.push((key, flags, cas, b[..vlen].to_vec()));
        b = &b[vlen..];
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn req_header_round_trip() {
        let h = ReqHeader {
            op: McOp::Cas,
            req_id: 99,
            ctr_id: 7,
            flags: 0xdead,
            exptime: 3600,
            cas: u64::MAX,
            delta: 5,
            keys: vec![b"alpha".to_vec(), b"beta".to_vec()],
        };
        assert_eq!(ReqHeader::decode(&h.encode()), Some(h));
    }

    #[test]
    fn resp_header_round_trip() {
        let h = RespHeader {
            req_id: 1,
            status: RespStatus::Number,
            flags: 2,
            cas: 3,
            number: 4,
            nvalues: 5,
        };
        assert_eq!(RespHeader::decode(&h.encode()), Some(h));
    }

    #[test]
    fn malformed_headers_rejected() {
        assert_eq!(ReqHeader::decode(&[0u8; 10]), None);
        let mut bad = ReqHeader::new(McOp::Get, 1, 2, b"k".to_vec()).encode();
        bad[0] = 200;
        assert_eq!(ReqHeader::decode(&bad), None);
        // Truncated key list.
        let good = ReqHeader::new(McOp::Get, 1, 2, b"long-key-name".to_vec()).encode();
        assert_eq!(ReqHeader::decode(&good[..good.len() - 3]), None);
    }

    #[test]
    fn dir_req_round_trip() {
        let r = DirReq {
            req_id: 42,
            ctr_id: 7,
            key: b"bypass-me".to_vec(),
        };
        assert_eq!(DirReq::decode(&r.encode()), Some(r.clone()));
        assert_eq!(DirReq::decode(&r.encode()[..10]), None);
    }

    #[test]
    fn dir_resp_round_trip() {
        let r = DirResp {
            req_id: 9,
            found: true,
            node: 3,
            rkey: 0xfeed_beef,
            offset: 1 << 30,
            len: 4096,
            vlen: 4000,
            flags: 0xa5,
            cas: u64::MAX - 1,
            exp: 1_300_003_600,
            version: 17,
        };
        assert_eq!(DirResp::decode(&r.encode()), Some(r));
        assert_eq!(DirResp::decode(&r.encode()[..40]), None);
        let m = DirResp::miss(5);
        assert!(!m.found);
        assert_eq!(DirResp::decode(&m.encode()), Some(m));
    }

    #[test]
    fn mget_entries_round_trip() {
        let mut buf = Vec::new();
        encode_mget_entry(&mut buf, b"k1", 1, 10, b"v1");
        encode_mget_entry(&mut buf, b"k2", 2, 20, &vec![9u8; 5000]);
        let got = decode_mget_entries(&buf, 2).unwrap();
        assert_eq!(got[0], (b"k1".to_vec(), 1, 10, b"v1".to_vec()));
        assert_eq!(got[1].3.len(), 5000);
        assert_eq!(decode_mget_entries(&buf[..10], 2), None);
    }
}
