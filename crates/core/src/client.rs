//! The Memcached client library (libmemcached 0.45's role in the paper).
//!
//! A client owns a pool of servers and routes each key with a hash — the
//! scalable, no-central-directory architecture of §II-C. The same API runs
//! over two transport families:
//!
//! * **UCR**: requests are active messages carrying a typed header and the
//!   client's counter id; the client blocks (with timeout) on the counter
//!   the server's response targets — the paper's §V flows;
//! * **Sockets**: requests are ASCII protocol frames over any byte-stream
//!   stack, exactly like the unmodified libmemcached baseline, with
//!   `TCP_NODELAY` set as the paper's benchmarks do.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet, VecDeque};
use std::pin::Pin;
use std::rc::Rc;

use mcproto::{
    arith_extras, encode_command, parse_response, store_extras, udp_fragment, BinFrame, BinOpcode,
    BinStatus, Command, GetValue, Response, StoreVerb, UdpFrame, UDP_CHUNK_BYTES,
};
use mcstore::Value;
use simnet::metrics::{LatencySpans, Stage};
use simnet::sync::timeout;
use simnet::trace::{Layer, Track};
use simnet::{NodeId, Sim, SimDuration, Stack, Tracer};
use socksim::{DgramSocket, SockError, Socket, SocketAddr};
use ucr::{
    AmData, Counter, Endpoint, FnHandler, MemoryDescriptor, SendOptions, UcrMemory, UcrRuntime,
};

use crate::am_wire::{
    decode_mget_entries, DirReq, DirResp, McOp, ReqHeader, RespHeader, RespStatus,
    BYPASS_VERSION_BYTES, MSG_MC_DIR_REQ, MSG_MC_DIR_RESP, MSG_MC_REQ, MSG_MC_RESP,
};
use crate::server::BASE_UNIX_TIME;
use crate::world::World;

/// Which transport family the client uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Transport {
    /// RDMA-capable active messages over native InfiniBand (the paper's
    /// design).
    Ucr,
    /// The same UCR design over RoCE — verbs on converged Ethernet
    /// adapters (the paper's SVII future work). Requires the cluster to
    /// have RDMA-capable Ethernet NICs.
    UcrRoce,
    /// Byte-stream sockets over the given stack (the baseline).
    Sockets(Stack),
    /// Memcached's UDP protocol over the given stack — the SIII Facebook
    /// baseline: connectionless requests with the 8-byte frame header,
    /// no delivery guarantee (loss surfaces as a timeout).
    Udp(Stack),
}

impl Transport {
    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Transport::Ucr => Stack::Ucr.label(),
            Transport::UcrRoce => "UCR-RoCE",
            Transport::Sockets(s) => s.label(),
            Transport::Udp(Stack::TenGigEToe) => "UDP/10GigE",
            Transport::Udp(Stack::OneGigE) => "UDP/1GigE",
            Transport::Udp(Stack::Ipoib) => "UDP/IPoIB",
            Transport::Udp(_) => "UDP",
        }
    }

    /// The `Stack` this transport corresponds to.
    pub fn stack(self) -> Stack {
        match self {
            Transport::Ucr | Transport::UcrRoce => Stack::Ucr,
            Transport::Sockets(s) | Transport::Udp(s) => s,
        }
    }
}

/// Key→server distribution strategy (libmemcached behaviors).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Distribution {
    /// `hash(key) % servers` (libmemcached default).
    Modula,
    /// Consistent hashing on a virtual-node ring (ketama).
    Ketama,
}

/// Key hash function (libmemcached's `MEMCACHED_BEHAVIOR_HASH`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum KeyHash {
    /// Jenkins one-at-a-time (libmemcached's default).
    #[default]
    OneAtATime,
    /// 32-bit FNV-1a.
    Fnv1a32,
    /// CRC-32 (as libmemcached computes it: CRC >> 16 & 0x7fff would be
    /// the textbook variant; the full 32-bit value distributes better and
    /// is what modern clients use).
    Crc32,
}

impl KeyHash {
    /// Hashes a key with the selected function.
    pub fn hash(self, key: &[u8]) -> u32 {
        match self {
            KeyHash::OneAtATime => one_at_a_time(key),
            KeyHash::Fnv1a32 => fnv1a_32(key),
            KeyHash::Crc32 => crc32(key),
        }
    }
}

/// 32-bit FNV-1a.
pub fn fnv1a_32(key: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in key {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// CRC-32 (IEEE 802.3 polynomial, bitwise — key hashing is not hot enough
/// to justify a table).
pub fn crc32(key: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in key {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Client configuration.
#[derive(Clone)]
pub struct McClientConfig {
    /// Transport family.
    pub transport: Transport,
    /// Server pool (nodes running `McServer`).
    pub servers: Vec<NodeId>,
    /// Service port.
    pub port: u16,
    /// Per-operation timeout (the UCR wait-with-timeout of §IV-A).
    pub op_timeout: SimDuration,
    /// Key distribution strategy.
    pub distribution: Distribution,
    /// Speak the binary protocol on sockets transports (libmemcached's
    /// `MEMCACHED_BEHAVIOR_BINARY_PROTOCOL`). Ignored for UCR transports,
    /// which have their own typed framing.
    pub binary_protocol: bool,
    /// Key hash function (libmemcached's `MEMCACHED_BEHAVIOR_HASH`).
    pub key_hash: KeyHash,
    /// Maximum outstanding requests per connection for the batch APIs
    /// ([`get_many`](McClient::get_many) / [`set_many`](McClient::set_many)).
    /// Depth 1 reproduces the classic synchronous one-op-at-a-time client;
    /// deeper pipelines keep up to this many requests in flight, the
    /// per-connection analogue of the paper's add-more-clients scaling
    /// (Fig. 6). Single-op calls (`get`/`set`/…) are unaffected.
    pub pipeline_depth: usize,
    /// Serve [`get`](McClient::get) with a client-direct RDMA read of the
    /// server's slab memory when possible (UCR transports only): the
    /// client resolves the key to an RDMA window through the item
    /// directory, caches the descriptor, and reads value + seqlock
    /// version with a one-sided get — zero server CPU on the hot path.
    /// Version skew (a concurrent writer) retries with a fresh
    /// descriptor; persistent trouble falls back to the AM get.
    pub bypass_get: bool,
    /// Bound on the client-side descriptor cache for the bypass path
    /// (entries; FIFO eviction).
    pub bypass_cache_cap: usize,
}

impl McClientConfig {
    /// A single-server config with defaults matching the paper's
    /// benchmarks.
    pub fn single(transport: Transport, server: NodeId) -> McClientConfig {
        McClientConfig {
            transport,
            servers: vec![server],
            port: 11211,
            op_timeout: SimDuration::from_millis(250),
            distribution: Distribution::Modula,
            binary_protocol: false,
            key_hash: KeyHash::default(),
            pipeline_depth: 1,
            bypass_get: false,
            bypass_cache_cap: 1024,
        }
    }
}

/// Errors surfaced by client operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum McError {
    /// The operation timed out (server dead or overloaded).
    Timeout,
    /// Connection failed or dropped.
    Disconnected,
    /// Precondition failed (add/replace/append/prepend).
    NotStored,
    /// CAS mismatch.
    Exists,
    /// Key not found (delete/incr/cas/touch).
    NotFound,
    /// Item too large for the cache.
    TooLarge,
    /// Server out of memory.
    OutOfMemory,
    /// incr/decr on a non-numeric value.
    NotNumeric,
    /// The server replied something unexpected.
    Protocol,
    /// Config has no servers.
    NoServers,
}

impl std::fmt::Display for McError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            McError::Timeout => "timed out",
            McError::Disconnected => "disconnected",
            McError::NotStored => "not stored",
            McError::Exists => "cas mismatch",
            McError::NotFound => "not found",
            McError::TooLarge => "object too large",
            McError::OutOfMemory => "server out of memory",
            McError::NotNumeric => "non-numeric value",
            McError::Protocol => "protocol error",
            McError::NoServers => "no servers configured",
        };
        f.write_str(s)
    }
}

impl std::error::Error for McError {}

/// The libmemcached "one-at-a-time" (Jenkins) hash — the default key hash.
pub fn one_at_a_time(key: &[u8]) -> u32 {
    let mut h: u32 = 0;
    for &b in key {
        h = h.wrapping_add(b as u32);
        h = h.wrapping_add(h << 10);
        h ^= h >> 6;
    }
    h = h.wrapping_add(h << 3);
    h ^= h >> 11;
    h = h.wrapping_add(h << 15);
    h
}

/// Responses parked by the UCR handler until their request wakes up.
/// This is the per-connection in-flight table: entries are keyed by
/// request id, so responses arriving out of issue order are matched to
/// the right waiter regardless of pipeline depth.
type PendingResponses = Rc<RefCell<HashMap<u64, (RespHeader, Vec<u8>)>>>;

/// Request ids abandoned before their response arrived (dropped in-flight
/// handles, timed-out waits). The response handler drops a late response
/// whose id is flagged here instead of parking it forever.
type CancelledIds = Rc<RefCell<HashSet<u64>>>;

/// Directory answers parked by the bypass handler until their waiter
/// claims them (same request-id discipline as [`PendingResponses`]).
type PendingDirResponses = Rc<RefCell<HashMap<u64, DirResp>>>;

/// One cached item descriptor for the bypass-GET path: the RDMA window
/// plus everything needed to validate a one-sided read of it.
#[derive(Clone, Copy)]
struct CachedDescriptor {
    remote: MemoryDescriptor,
    vlen: u32,
    flags: u32,
    cas: u64,
    exp: u32,
    version: u64,
}

/// How many times a bypass get chases version skew (descriptor refetch +
/// re-read) before falling back to the AM path.
const BYPASS_RETRIES: u32 = 3;

/// How a single one-sided bypass read ended.
enum BypassRead {
    /// Value bytes landed and the trailing version word matched.
    Ok(Vec<u8>),
    /// The version word moved: a writer raced the read.
    Skew,
    /// The read faulted (deregistered rkey after a slab-page retirement,
    /// endpoint failure) or timed out.
    Failed,
}

/// One UCR request issued (AM 1 handed to the HCA) but not yet completed.
/// Dropping the handle without completing it (a batch aborting on an
/// earlier op's error, a caller discarding an issued get) scrubs the
/// request from the in-flight table so abandoned ops cannot grow it
/// without bound.
struct UcrInFlight {
    req_id: u64,
    ctr: Counter,
    cli: Rc<CliInner>,
    /// Set once `ucr_complete` has taken over the op's lifecycle; the
    /// `Drop` cleanup then has nothing left to do.
    completed: bool,
}

impl Drop for UcrInFlight {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        // Abandoned mid-flight: claim the parked response if it already
        // landed, otherwise flag the id so the handler drops the response
        // on arrival, and close the op's latency span and trace span.
        if self.cli.pending.borrow_mut().remove(&self.req_id).is_none() {
            self.cli.cancelled.borrow_mut().insert(self.req_id);
        }
        self.cli.span(|sp| sp.discard(self.req_id));
        self.cli.end_op(self.req_id, 0);
    }
}

/// Shared slot holding the (optional) latency-attribution sink, so the
/// UCR response handler closure can see spans attached after setup.
type SpanSlot = Rc<RefCell<Option<Rc<LatencySpans>>>>;

enum Conn {
    Ucr(Endpoint),
    Sock(Rc<Socket>),
    Udp {
        sock: Rc<DgramSocket>,
        server: SocketAddr,
    },
}

struct CliInner {
    sim: Sim,
    node: NodeId,
    cfg: McClientConfig,
    socks: socksim::SockFabric,
    ucr: Option<UcrRuntime>,
    conns: RefCell<HashMap<usize, Rc<Conn>>>,
    pending: PendingResponses,
    cancelled: CancelledIds,
    next_req: Cell<u64>,
    ring: Vec<(u32, usize)>,
    /// Operations issued (diagnostics).
    ops: Cell<u64>,
    /// Latency-attribution sink, when attached (adds no virtual time).
    spans: SpanSlot,
    /// Cross-layer event tracer (cluster-wide; adds no virtual time).
    tracer: Rc<Tracer>,
    /// Live pipelined-window occupancy (`client.nodeN.inflight`); the
    /// gauge's high watermark records the deepest window reached.
    inflight_gauge: Rc<simnet::metrics::Gauge>,
    /// Completed operations (`client.nodeN.ops_completed`): the counter a
    /// time-series sampler turns into client-observed throughput.
    ops_completed: Rc<simnet::metrics::Counter>,
    /// Cluster metrics registry (lazy counter creation).
    metrics: Rc<simnet::metrics::Metrics>,
    /// Batch ops that silently degraded to sequential round trips
    /// (`client.nodeN.batch_fallback_ops`), created on first degrade:
    /// binary-protocol and UDP connections have no pipelined batch path,
    /// so `get_many`/`set_many` fall back to one-at-a-time there.
    batch_fallback: RefCell<Option<Rc<simnet::metrics::Counter>>>,
    /// Directory answers awaiting their bypass-get waiter.
    dir_pending: PendingDirResponses,
    /// Cached item descriptors, keyed by (server index, key).
    bypass_cache: RefCell<HashMap<(usize, Vec<u8>), CachedDescriptor>>,
    /// Insertion order of `bypass_cache` keys (FIFO bound).
    bypass_order: RefCell<VecDeque<(usize, Vec<u8>)>>,
    /// Dedicated endpoints for one-sided reads, one per server. A failed
    /// one-sided op poisons its endpoint, so the bypass path dials its
    /// own connection and re-dials after a fault instead of poisoning
    /// the AM connection.
    bypass_eps: RefCell<HashMap<usize, Endpoint>>,
    /// Scratch region one-sided reads land in (grown on demand).
    bypass_buf: RefCell<Option<Rc<UcrMemory>>>,
}

impl CliInner {
    /// Accounts one completed operation (any transport).
    fn op_done(&self) {
        self.ops_completed.inc();
    }
}

/// A Memcached client bound to one node of the simulated cluster.
#[derive(Clone)]
pub struct McClient {
    inner: Rc<CliInner>,
}

impl McClient {
    /// Creates a client on `node`. For UCR transports this brings up a UCR
    /// runtime on the node and registers the response handler.
    pub fn new(world: &World, node: NodeId, cfg: McClientConfig) -> McClient {
        assert!(!cfg.servers.is_empty(), "client needs at least one server");
        let pending: PendingResponses = Rc::new(RefCell::new(HashMap::new()));
        let cancelled: CancelledIds = Rc::new(RefCell::new(HashSet::new()));
        let dir_pending: PendingDirResponses = Rc::new(RefCell::new(HashMap::new()));
        let spans: SpanSlot = Rc::new(RefCell::new(None));
        // Resolve the RDMA fabric first: asking for RoCE on a cluster
        // whose Ethernet adapters lack it leaves `ucr` unset, and every
        // operation then fails with `McError::Disconnected` — the same
        // graceful path a vanished server takes — instead of panicking.
        let fabric = match cfg.transport {
            Transport::Ucr => Some(&world.ib),
            Transport::UcrRoce => world.roce.as_ref(),
            Transport::Sockets(_) | Transport::Udp(_) => None,
        };
        let tracer = world.cluster.tracer().clone();
        let ucr = match (cfg.transport, fabric) {
            (Transport::Ucr | Transport::UcrRoce, Some(fabric)) => {
                let rt = UcrRuntime::new(fabric, node);
                let pending2 = pending.clone();
                let cancelled2 = cancelled.clone();
                let spans2 = spans.clone();
                let sim2 = world.sim().clone();
                let tracer2 = tracer.clone();
                rt.register_handler(
                    MSG_MC_RESP,
                    FnHandler(move |_ep: &Endpoint, hdr: &[u8], data: AmData| {
                        if let Some(resp) = RespHeader::decode(hdr) {
                            if cancelled2.borrow_mut().remove(&resp.req_id) {
                                // The op was abandoned (dropped handle or
                                // timed-out wait); drop the late response
                                // instead of parking it forever.
                                return;
                            }
                            if let Some(sp) = spans2.borrow().as_ref() {
                                // Response landed: wire time ends here.
                                sp.mark(resp.req_id, Stage::ReplyWire, sim2.now());
                            }
                            // Profiler marker: the response-wire stage of
                            // the critical path ends here (detail only).
                            tracer2.instant_detail(
                                Layer::Core,
                                "client_reply",
                                node,
                                Track::Main,
                                resp.req_id,
                                data.len() as u64,
                                sim2.now(),
                            );
                            let payload = data.into_vec().unwrap_or_default();
                            pending2.borrow_mut().insert(resp.req_id, (resp, payload));
                        }
                    }),
                );
                let dir2 = dir_pending.clone();
                let cancelled3 = cancelled.clone();
                rt.register_handler(
                    MSG_MC_DIR_RESP,
                    FnHandler(move |_ep: &Endpoint, hdr: &[u8], _data: AmData| {
                        if let Some(resp) = DirResp::decode(hdr) {
                            if cancelled3.borrow_mut().remove(&resp.req_id) {
                                return; // abandoned lookup: drop it
                            }
                            dir2.borrow_mut().insert(resp.req_id, resp);
                        }
                    }),
                );
                Some(rt)
            }
            _ => None,
        };
        // Ketama ring: 100 virtual points per server.
        let mut ring = Vec::new();
        if cfg.distribution == Distribution::Ketama {
            for (idx, server) in cfg.servers.iter().enumerate() {
                for vn in 0..100u32 {
                    let point = one_at_a_time(format!("{}-{}", server.0, vn).as_bytes());
                    ring.push((point, idx));
                }
            }
            ring.sort_unstable();
        }
        McClient {
            inner: Rc::new(CliInner {
                sim: world.sim().clone(),
                node,
                cfg,
                socks: world.socks.clone(),
                ucr,
                conns: RefCell::new(HashMap::new()),
                pending,
                cancelled,
                // In profiler (detail) mode each client claims a
                // node-prefixed request-id space: concurrent clients'
                // ops then never collide on the shared trace stream,
                // which critical-path correlation relies on (one client
                // per node, the topology every bench uses). The id is a
                // fixed-width wire field, so the seeding changes no
                // message size and no virtual-time outcome.
                next_req: Cell::new(if tracer.detail() {
                    (u64::from(node.0) << 32) | 1
                } else {
                    1
                }),
                ring,
                ops: Cell::new(0),
                spans,
                tracer,
                inflight_gauge: world
                    .cluster
                    .metrics()
                    .gauge(&format!("client.node{}.inflight", node.0)),
                ops_completed: world
                    .cluster
                    .metrics()
                    .counter(&format!("client.node{}.ops_completed", node.0)),
                metrics: world.cluster.metrics().clone(),
                batch_fallback: RefCell::new(None),
                dir_pending,
                bypass_cache: RefCell::new(HashMap::new()),
                bypass_order: RefCell::new(VecDeque::new()),
                bypass_eps: RefCell::new(HashMap::new()),
                bypass_buf: RefCell::new(None),
            }),
        }
    }

    /// Attaches (or clears) a latency-attribution sink: every subsequent
    /// operation records its per-stage breakdown there. Pass the same
    /// sink to [`McServer::attach_spans`](crate::McServer::attach_spans)
    /// so the server-side stages land in the same spans.
    pub fn attach_spans(&self, spans: Option<Rc<LatencySpans>>) {
        *self.inner.spans.borrow_mut() = spans;
    }

    /// The node this client runs on.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// Which server index a key routes to (exposed for tests).
    pub fn route(&self, key: &[u8]) -> usize {
        self.inner.route(key)
    }

    /// Total operations issued.
    pub fn ops_issued(&self) -> u64 {
        self.inner.ops.get()
    }

    /// Number of responses currently parked in the in-flight table
    /// awaiting their waiter (diagnostics/tests). Abandoned ops are
    /// scrubbed, so this stays bounded by the pipeline depth.
    pub fn pending_responses(&self) -> usize {
        self.inner.pending.borrow().len()
    }

    /// The client's UCR runtime, when using the UCR transport (ablation
    /// hooks and statistics).
    pub fn ucr_runtime(&self) -> Option<UcrRuntime> {
        self.inner.ucr.clone()
    }

    /// Drops cached connections (e.g. after a server was declared dead via
    /// a timeout) so the next operation reconnects from scratch.
    pub fn reset_connections(&self) {
        for (_, conn) in self.inner.conns.borrow_mut().drain() {
            match &*conn {
                Conn::Ucr(ep) => ep.close(),
                Conn::Sock(sock) => sock.close(),
                Conn::Udp { .. } => {} // the socket unbinds on drop
            }
        }
        for (_, ep) in self.inner.bypass_eps.borrow_mut().drain() {
            ep.close();
        }
        // Descriptors name the dead server's memory: forget them.
        self.inner.bypass_cache.borrow_mut().clear();
        self.inner.bypass_order.borrow_mut().clear();
        // Closed endpoints can no longer deliver, so cancellation flags
        // for their outstanding responses will never be consulted again.
        self.inner.cancelled.borrow_mut().clear();
    }

    /// Stores `value` under `key` unconditionally.
    pub async fn set(
        &self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
    ) -> Result<(), McError> {
        self.store_op(McOp::Set, key, value, flags, exptime, 0)
            .await
    }

    /// Stores only if the key is absent.
    pub async fn add(
        &self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
    ) -> Result<(), McError> {
        self.store_op(McOp::Add, key, value, flags, exptime, 0)
            .await
    }

    /// Stores only if the key exists.
    pub async fn replace(
        &self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
    ) -> Result<(), McError> {
        self.store_op(McOp::Replace, key, value, flags, exptime, 0)
            .await
    }

    /// Appends to an existing value.
    pub async fn append(&self, key: &[u8], value: &[u8]) -> Result<(), McError> {
        self.store_op(McOp::Append, key, value, 0, 0, 0).await
    }

    /// Prepends to an existing value.
    pub async fn prepend(&self, key: &[u8], value: &[u8]) -> Result<(), McError> {
        self.store_op(McOp::Prepend, key, value, 0, 0, 0).await
    }

    /// Compare-and-store with a token from [`get`](McClient::get).
    pub async fn cas(
        &self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
        cas: u64,
    ) -> Result<(), McError> {
        self.store_op(McOp::Cas, key, value, flags, exptime, cas)
            .await
    }

    /// Fetches a value (CAS token always populated).
    pub async fn get(&self, key: &[u8]) -> Result<Option<Value>, McError> {
        let inner = &self.inner;
        inner.ops.set(inner.ops.get() + 1);
        let sidx = inner.route(key);
        let conn = inner.conn(sidx).await?;
        match &*conn {
            Conn::Ucr(ep) => {
                if inner.cfg.bypass_get {
                    if let Some(done) = inner.bypass_get(sidx, ep, key).await {
                        return done;
                    }
                    // Bypass gave up (descriptor trouble, retry budget):
                    // fall through to the classic AM round trip.
                }
                let (resp, data) = inner
                    .ucr_round_trip(
                        ep,
                        |req_id, ctr| ReqHeader::new(McOp::Get, req_id, ctr, key.to_vec()),
                        Vec::new(),
                    )
                    .await?;
                match resp.status {
                    RespStatus::Hit => Ok(Some(Value {
                        data,
                        flags: resp.flags,
                        cas: resp.cas,
                    })),
                    RespStatus::Miss => Ok(None),
                    _ => Err(McError::Protocol),
                }
            }
            c @ (Conn::Sock(_) | Conn::Udp { .. }) => {
                let cmd = Command::Gets {
                    keys: vec![key.to_vec()],
                };
                let resp = inner.sock_round_trip(c, &cmd).await?;
                match resp {
                    Response::Values(mut vs) => Ok(vs.pop().map(|v| Value {
                        data: v.data,
                        flags: v.flags,
                        cas: v.cas.unwrap_or(0),
                    })),
                    _ => Err(McError::Protocol),
                }
            }
        }
    }

    /// Multi-key fetch. Keys may span servers; requests are grouped per
    /// server. Returns `(key, value)` pairs for hits.
    pub async fn mget(&self, keys: &[&[u8]]) -> Result<Vec<(Vec<u8>, Value)>, McError> {
        let inner = &self.inner;
        inner.ops.set(inner.ops.get() + 1);
        let mut by_server: HashMap<usize, Vec<Vec<u8>>> = HashMap::new();
        for k in keys {
            by_server
                .entry(inner.route(k))
                .or_default()
                .push(k.to_vec());
        }
        let mut out = Vec::new();
        let mut groups: Vec<_> = by_server.into_iter().collect();
        groups.sort_by_key(|(s, _)| *s);
        for (sidx, group) in groups {
            let conn = inner.conn(sidx).await?;
            match &*conn {
                Conn::Ucr(ep) => {
                    let (resp, data) = inner
                        .ucr_round_trip(
                            ep,
                            |req_id, ctr| ReqHeader {
                                op: McOp::Mget,
                                req_id,
                                ctr_id: ctr,
                                flags: 0,
                                exptime: 0,
                                cas: 0,
                                delta: 0,
                                keys: group.clone(),
                            },
                            Vec::new(),
                        )
                        .await?;
                    let entries = decode_mget_entries(&data, resp.nvalues as usize)
                        .ok_or(McError::Protocol)?;
                    for (key, flags, cas, value) in entries {
                        out.push((
                            key,
                            Value {
                                data: value,
                                flags,
                                cas,
                            },
                        ));
                    }
                }
                c @ (Conn::Sock(_) | Conn::Udp { .. }) => {
                    let cmd = Command::Gets { keys: group };
                    match inner.sock_round_trip(c, &cmd).await? {
                        Response::Values(vs) => {
                            for v in vs {
                                out.push((
                                    v.key,
                                    Value {
                                        data: v.data,
                                        flags: v.flags,
                                        cas: v.cas.unwrap_or(0),
                                    },
                                ));
                            }
                        }
                        _ => return Err(McError::Protocol),
                    }
                }
            }
        }
        Ok(out)
    }

    /// Issues a get without waiting for the response (UCR transports
    /// only): the request is handed to the HCA and the returned handle
    /// claims the response later. Responses are correlated by request id
    /// in the in-flight table, so several issued gets may complete in any
    /// order. Returns [`McError::Protocol`] on socket transports, which
    /// have no out-of-order wire correlation.
    pub async fn issue_get(&self, key: &[u8]) -> Result<InFlightGet, McError> {
        let inner = &self.inner;
        inner.ops.set(inner.ops.get() + 1);
        let conn = inner.conn(inner.route(key)).await?;
        let Conn::Ucr(ep) = &*conn else {
            return Err(McError::Protocol);
        };
        let op = inner
            .ucr_issue(
                ep,
                |req_id, ctr| ReqHeader::new(McOp::Get, req_id, ctr, key.to_vec()),
                Vec::new(),
            )
            .await?;
        Ok(InFlightGet { op })
    }

    /// Issues an unconditional store without waiting for the response
    /// (UCR transports only); see [`issue_get`](McClient::issue_get).
    pub async fn issue_set(
        &self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
    ) -> Result<InFlightSet, McError> {
        let inner = &self.inner;
        inner.ops.set(inner.ops.get() + 1);
        let conn = inner.conn(inner.route(key)).await?;
        let Conn::Ucr(ep) = &*conn else {
            return Err(McError::Protocol);
        };
        let op = inner
            .ucr_issue(
                ep,
                |req_id, ctr| {
                    let mut h = ReqHeader::new(McOp::Set, req_id, ctr, key.to_vec());
                    h.flags = flags;
                    h.exptime = exptime;
                    h
                },
                value.to_vec(),
            )
            .await?;
        Ok(InFlightSet { op })
    }

    /// Pipelined multi-get: fetches every key while keeping up to
    /// `pipeline_depth` requests outstanding per connection. The result
    /// is in key order (`None` = miss); keys spanning servers are grouped
    /// per server like [`mget`](McClient::mget). On UCR transports the
    /// responses may arrive out of issue order (request-id correlation);
    /// on ASCII socket transports up to `depth` commands are written
    /// ahead of the FIFO reads; binary-protocol and UDP transports fall
    /// back to one-at-a-time sequential round trips — a silent degrade
    /// accounted in the `client.nodeN.batch_fallback_ops` counter.
    pub async fn get_many(&self, keys: &[&[u8]]) -> Result<Vec<Option<Value>>, McError> {
        let inner = &self.inner;
        inner.ops.set(inner.ops.get() + keys.len() as u64);
        let depth = inner.cfg.pipeline_depth.max(1);
        let mut out: Vec<Option<Value>> = Vec::new();
        out.resize_with(keys.len(), || None);
        for (sidx, idxs) in group_by_server(inner, keys.iter().copied()) {
            let conn = inner.conn(sidx).await?;
            match &*conn {
                Conn::Ucr(ep) => {
                    let mut window: VecDeque<(usize, UcrInFlight)> = VecDeque::new();
                    for i in idxs {
                        if window.len() == depth {
                            if let Some((j, op)) = window.pop_front() {
                                inner.inflight_gauge.set(window.len() as f64);
                                out[j] = decode_get_resp(inner.ucr_complete(op).await?)?;
                                inner.op_done();
                            }
                        }
                        let key = keys[i];
                        let op = inner
                            .ucr_issue(
                                ep,
                                |req_id, ctr| ReqHeader::new(McOp::Get, req_id, ctr, key.to_vec()),
                                Vec::new(),
                            )
                            .await?;
                        window.push_back((i, op));
                        inner.inflight_gauge.set(window.len() as f64);
                    }
                    while let Some((j, op)) = window.pop_front() {
                        inner.inflight_gauge.set(window.len() as f64);
                        out[j] = decode_get_resp(inner.ucr_complete(op).await?)?;
                        inner.op_done();
                    }
                }
                Conn::Sock(sock) if !inner.cfg.binary_protocol => {
                    let cmds: Vec<Command> = idxs
                        .iter()
                        .map(|&i| Command::Gets {
                            keys: vec![keys[i].to_vec()],
                        })
                        .collect();
                    let resps = inner.sock_pipeline(sock, &cmds, depth).await?;
                    for (&j, resp) in idxs.iter().zip(resps) {
                        match resp {
                            Response::Values(mut vs) => {
                                out[j] = vs.pop().map(|v| Value {
                                    data: v.data,
                                    flags: v.flags,
                                    cas: v.cas.unwrap_or(0),
                                });
                                inner.op_done();
                            }
                            _ => return Err(McError::Protocol),
                        }
                    }
                }
                c @ (Conn::Sock(_) | Conn::Udp { .. }) => {
                    // Binary-protocol and UDP connections have no
                    // pipelined batch path: each op is a full sequential
                    // round trip, accounted in `batch_fallback_ops`.
                    inner.count_batch_fallback(idxs.len() as u64);
                    for i in idxs {
                        let cmd = Command::Gets {
                            keys: vec![keys[i].to_vec()],
                        };
                        match inner.sock_round_trip(c, &cmd).await? {
                            Response::Values(mut vs) => {
                                out[i] = vs.pop().map(|v| Value {
                                    data: v.data,
                                    flags: v.flags,
                                    cas: v.cas.unwrap_or(0),
                                });
                                inner.op_done();
                            }
                            _ => return Err(McError::Protocol),
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Pipelined multi-set: stores every `(key, value)` pair while
    /// keeping up to `pipeline_depth` requests outstanding per
    /// connection (transport handling as in
    /// [`get_many`](McClient::get_many)). The outer error is a transport
    /// failure; the inner vector carries each item's own outcome in
    /// input order.
    #[allow(clippy::type_complexity)]
    pub async fn set_many(
        &self,
        items: &[(&[u8], &[u8])],
        flags: u32,
        exptime: u32,
    ) -> Result<Vec<Result<(), McError>>, McError> {
        let inner = &self.inner;
        inner.ops.set(inner.ops.get() + items.len() as u64);
        let depth = inner.cfg.pipeline_depth.max(1);
        let mut out: Vec<Result<(), McError>> = Vec::new();
        out.resize_with(items.len(), || Ok(()));
        for (sidx, idxs) in group_by_server(inner, items.iter().map(|(k, _)| *k)) {
            let conn = inner.conn(sidx).await?;
            match &*conn {
                Conn::Ucr(ep) => {
                    let mut window: VecDeque<(usize, UcrInFlight)> = VecDeque::new();
                    for i in idxs {
                        if window.len() == depth {
                            if let Some((j, op)) = window.pop_front() {
                                inner.inflight_gauge.set(window.len() as f64);
                                let (resp, _) = inner.ucr_complete(op).await?;
                                out[j] = status_to_result(resp.status);
                                inner.op_done();
                            }
                        }
                        let (key, value) = items[i];
                        let op = inner
                            .ucr_issue(
                                ep,
                                |req_id, ctr| {
                                    let mut h =
                                        ReqHeader::new(McOp::Set, req_id, ctr, key.to_vec());
                                    h.flags = flags;
                                    h.exptime = exptime;
                                    h
                                },
                                value.to_vec(),
                            )
                            .await?;
                        window.push_back((i, op));
                        inner.inflight_gauge.set(window.len() as f64);
                    }
                    while let Some((j, op)) = window.pop_front() {
                        inner.inflight_gauge.set(window.len() as f64);
                        let (resp, _) = inner.ucr_complete(op).await?;
                        out[j] = status_to_result(resp.status);
                        inner.op_done();
                    }
                }
                Conn::Sock(sock) if !inner.cfg.binary_protocol => {
                    let cmds: Vec<Command> = idxs
                        .iter()
                        .map(|&i| Command::Store {
                            verb: StoreVerb::Set,
                            key: items[i].0.to_vec(),
                            flags,
                            exptime,
                            data: items[i].1.to_vec(),
                            noreply: false,
                        })
                        .collect();
                    let resps = inner.sock_pipeline(sock, &cmds, depth).await?;
                    for (&j, resp) in idxs.iter().zip(resps) {
                        out[j] = match resp {
                            Response::Stored => Ok(()),
                            Response::NotStored => Err(McError::NotStored),
                            Response::ServerError(m) if m.contains("too large") => {
                                Err(McError::TooLarge)
                            }
                            Response::ServerError(_) => Err(McError::OutOfMemory),
                            _ => Err(McError::Protocol),
                        };
                        inner.op_done();
                    }
                }
                c @ (Conn::Sock(_) | Conn::Udp { .. }) => {
                    // Sequential degrade (no pipelined batch path here);
                    // see `batch_fallback_ops`.
                    inner.count_batch_fallback(idxs.len() as u64);
                    for i in idxs {
                        let (key, value) = items[i];
                        let cmd = Command::Store {
                            verb: StoreVerb::Set,
                            key: key.to_vec(),
                            flags,
                            exptime,
                            data: value.to_vec(),
                            noreply: false,
                        };
                        out[i] = match inner.sock_round_trip(c, &cmd).await? {
                            Response::Stored => Ok(()),
                            Response::NotStored => Err(McError::NotStored),
                            Response::ServerError(m) if m.contains("too large") => {
                                Err(McError::TooLarge)
                            }
                            Response::ServerError(_) => Err(McError::OutOfMemory),
                            _ => Err(McError::Protocol),
                        };
                        inner.op_done();
                    }
                }
            }
        }
        Ok(out)
    }

    /// Removes a key; `Ok(true)` if it existed.
    pub async fn delete(&self, key: &[u8]) -> Result<bool, McError> {
        let inner = &self.inner;
        inner.ops.set(inner.ops.get() + 1);
        let conn = inner.conn(inner.route(key)).await?;
        match &*conn {
            Conn::Ucr(ep) => {
                let (resp, _) = inner
                    .ucr_round_trip(
                        ep,
                        |req_id, ctr| ReqHeader::new(McOp::Delete, req_id, ctr, key.to_vec()),
                        Vec::new(),
                    )
                    .await?;
                match resp.status {
                    RespStatus::Ok => Ok(true),
                    RespStatus::NotFound => Ok(false),
                    _ => Err(McError::Protocol),
                }
            }
            c @ (Conn::Sock(_) | Conn::Udp { .. }) => {
                let cmd = Command::Delete {
                    key: key.to_vec(),
                    noreply: false,
                };
                match inner.sock_round_trip(c, &cmd).await? {
                    Response::Deleted => Ok(true),
                    Response::NotFound => Ok(false),
                    _ => Err(McError::Protocol),
                }
            }
        }
    }

    /// Increments a decimal value; returns the new value.
    pub async fn incr(&self, key: &[u8], delta: u64) -> Result<u64, McError> {
        self.arith(McOp::Incr, key, delta).await
    }

    /// Decrements a decimal value (clamped at zero); returns the new value.
    pub async fn decr(&self, key: &[u8], delta: u64) -> Result<u64, McError> {
        self.arith(McOp::Decr, key, delta).await
    }

    /// Refreshes a key's expiration.
    pub async fn touch(&self, key: &[u8], exptime: u32) -> Result<bool, McError> {
        let inner = &self.inner;
        inner.ops.set(inner.ops.get() + 1);
        let conn = inner.conn(inner.route(key)).await?;
        match &*conn {
            Conn::Ucr(ep) => {
                let (resp, _) = inner
                    .ucr_round_trip(
                        ep,
                        |req_id, ctr| {
                            let mut h = ReqHeader::new(McOp::Touch, req_id, ctr, key.to_vec());
                            h.exptime = exptime;
                            h
                        },
                        Vec::new(),
                    )
                    .await?;
                match resp.status {
                    RespStatus::Ok => Ok(true),
                    RespStatus::NotFound => Ok(false),
                    _ => Err(McError::Protocol),
                }
            }
            c @ (Conn::Sock(_) | Conn::Udp { .. }) => {
                let cmd = Command::Touch {
                    key: key.to_vec(),
                    exptime,
                    noreply: false,
                };
                match inner.sock_round_trip(c, &cmd).await? {
                    Response::Touched => Ok(true),
                    Response::NotFound => Ok(false),
                    _ => Err(McError::Protocol),
                }
            }
        }
    }

    /// Flushes every server in the pool.
    pub async fn flush_all(&self) -> Result<(), McError> {
        let inner = &self.inner;
        for sidx in 0..inner.cfg.servers.len() {
            let conn = inner.conn(sidx).await?;
            match &*conn {
                Conn::Ucr(ep) => {
                    let (resp, _) = inner
                        .ucr_round_trip(
                            ep,
                            |req_id, ctr| ReqHeader::new(McOp::FlushAll, req_id, ctr, Vec::new()),
                            Vec::new(),
                        )
                        .await?;
                    if resp.status != RespStatus::Ok {
                        return Err(McError::Protocol);
                    }
                }
                c @ (Conn::Sock(_) | Conn::Udp { .. }) => {
                    let cmd = Command::FlushAll {
                        delay: 0,
                        noreply: false,
                    };
                    match inner.sock_round_trip(c, &cmd).await? {
                        Response::Ok => {}
                        _ => return Err(McError::Protocol),
                    }
                }
            }
        }
        Ok(())
    }

    /// Server version string (first server).
    pub async fn version(&self) -> Result<String, McError> {
        let inner = &self.inner;
        let conn = inner.conn(0).await?;
        match &*conn {
            Conn::Ucr(ep) => {
                let (_, data) = inner
                    .ucr_round_trip(
                        ep,
                        |req_id, ctr| ReqHeader::new(McOp::Version, req_id, ctr, Vec::new()),
                        Vec::new(),
                    )
                    .await?;
                Ok(String::from_utf8_lossy(&data).into_owned())
            }
            c @ (Conn::Sock(_) | Conn::Udp { .. }) => {
                match inner.sock_round_trip(c, &Command::Version).await? {
                    Response::Version(v) => Ok(v),
                    _ => Err(McError::Protocol),
                }
            }
        }
    }

    /// Statistics from the first server, as `(name, value)` pairs.
    pub async fn stats(&self) -> Result<Vec<(String, String)>, McError> {
        self.stats_report("").await
    }

    /// A statistics sub-report from the first server (`"slabs"`,
    /// `"items"`; empty = general stats).
    pub async fn stats_report(&self, which: &str) -> Result<Vec<(String, String)>, McError> {
        let inner = &self.inner;
        let arg: Vec<u8> = which.as_bytes().to_vec();
        let conn = inner.conn(0).await?;
        match &*conn {
            Conn::Ucr(ep) => {
                let (_, data) = inner
                    .ucr_round_trip(
                        ep,
                        |req_id, ctr| ReqHeader::new(McOp::Stats, req_id, ctr, arg.clone()),
                        Vec::new(),
                    )
                    .await?;
                let text = String::from_utf8_lossy(&data);
                Ok(text
                    .lines()
                    .filter_map(|l| {
                        let mut it = l.splitn(2, ' ');
                        Some((it.next()?.to_string(), it.next().unwrap_or("").to_string()))
                    })
                    .collect())
            }
            c @ (Conn::Sock(_) | Conn::Udp { .. }) => {
                let cmd = Command::Stats {
                    arg: (!arg.is_empty()).then_some(arg),
                };
                match inner.sock_round_trip(c, &cmd).await? {
                    Response::Stats(st) => Ok(st),
                    // A bare END (empty report) parses as an empty value
                    // list; the two are indistinguishable on the wire.
                    Response::Values(v) if v.is_empty() => Ok(Vec::new()),
                    _ => Err(McError::Protocol),
                }
            }
        }
    }

    async fn store_op(
        &self,
        op: McOp,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
        cas: u64,
    ) -> Result<(), McError> {
        let inner = &self.inner;
        inner.ops.set(inner.ops.get() + 1);
        let conn = inner.conn(inner.route(key)).await?;
        match &*conn {
            Conn::Ucr(ep) => {
                let (resp, _) = inner
                    .ucr_round_trip(
                        ep,
                        |req_id, ctr| {
                            let mut h = ReqHeader::new(op, req_id, ctr, key.to_vec());
                            h.flags = flags;
                            h.exptime = exptime;
                            h.cas = cas;
                            h
                        },
                        value.to_vec(),
                    )
                    .await?;
                status_to_result(resp.status)
            }
            c @ (Conn::Sock(_) | Conn::Udp { .. }) => {
                let cmd = match op {
                    McOp::Cas => Command::Cas {
                        key: key.to_vec(),
                        flags,
                        exptime,
                        cas,
                        data: value.to_vec(),
                        noreply: false,
                    },
                    _ => Command::Store {
                        verb: match op {
                            McOp::Set => StoreVerb::Set,
                            McOp::Add => StoreVerb::Add,
                            McOp::Replace => StoreVerb::Replace,
                            McOp::Append => StoreVerb::Append,
                            McOp::Prepend => StoreVerb::Prepend,
                            _ => unreachable!("not a storage verb"),
                        },
                        key: key.to_vec(),
                        flags,
                        exptime,
                        data: value.to_vec(),
                        noreply: false,
                    },
                };
                match inner.sock_round_trip(c, &cmd).await? {
                    Response::Stored => Ok(()),
                    Response::NotStored => Err(McError::NotStored),
                    Response::Exists => Err(McError::Exists),
                    Response::NotFound => Err(McError::NotFound),
                    Response::ServerError(m) if m.contains("too large") => Err(McError::TooLarge),
                    Response::ServerError(_) => Err(McError::OutOfMemory),
                    _ => Err(McError::Protocol),
                }
            }
        }
    }

    async fn arith(&self, op: McOp, key: &[u8], delta: u64) -> Result<u64, McError> {
        let inner = &self.inner;
        inner.ops.set(inner.ops.get() + 1);
        let conn = inner.conn(inner.route(key)).await?;
        match &*conn {
            Conn::Ucr(ep) => {
                let (resp, _) = inner
                    .ucr_round_trip(
                        ep,
                        |req_id, ctr| {
                            let mut h = ReqHeader::new(op, req_id, ctr, key.to_vec());
                            h.delta = delta;
                            h
                        },
                        Vec::new(),
                    )
                    .await?;
                match resp.status {
                    RespStatus::Number => Ok(resp.number),
                    RespStatus::NotFound => Err(McError::NotFound),
                    RespStatus::NotNumeric => Err(McError::NotNumeric),
                    _ => Err(McError::Protocol),
                }
            }
            c @ (Conn::Sock(_) | Conn::Udp { .. }) => {
                let cmd = if op == McOp::Incr {
                    Command::Incr {
                        key: key.to_vec(),
                        delta,
                        noreply: false,
                    }
                } else {
                    Command::Decr {
                        key: key.to_vec(),
                        delta,
                        noreply: false,
                    }
                };
                match inner.sock_round_trip(c, &cmd).await? {
                    Response::Number(n) => Ok(n),
                    Response::NotFound => Err(McError::NotFound),
                    Response::ClientError(_) => Err(McError::NotNumeric),
                    _ => Err(McError::Protocol),
                }
            }
        }
    }
}

fn status_to_result(s: RespStatus) -> Result<(), McError> {
    match s {
        RespStatus::Stored | RespStatus::Ok => Ok(()),
        RespStatus::NotStored => Err(McError::NotStored),
        RespStatus::Exists => Err(McError::Exists),
        RespStatus::NotFound => Err(McError::NotFound),
        RespStatus::TooLarge => Err(McError::TooLarge),
        RespStatus::OutOfMemory => Err(McError::OutOfMemory),
        _ => Err(McError::Protocol),
    }
}

/// Decodes a get response into the `Option<Value>` shape.
fn decode_get_resp((resp, data): (RespHeader, Vec<u8>)) -> Result<Option<Value>, McError> {
    match resp.status {
        RespStatus::Hit => Ok(Some(Value {
            data,
            flags: resp.flags,
            cas: resp.cas,
        })),
        RespStatus::Miss => Ok(None),
        _ => Err(McError::Protocol),
    }
}

/// Groups item indices by target server, preserving input order within
/// each group; groups come out in server-index order (deterministic).
fn group_by_server<'a>(
    inner: &CliInner,
    keys: impl Iterator<Item = &'a [u8]>,
) -> Vec<(usize, Vec<usize>)> {
    let mut by_server: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, k) in keys.enumerate() {
        by_server.entry(inner.route(k)).or_default().push(i);
    }
    let mut groups: Vec<_> = by_server.into_iter().collect();
    groups.sort_by_key(|(s, _)| *s);
    groups
}

/// A get issued but not yet completed — the handle half of the
/// issue/complete split (UCR transports). Dropping it abandons the op
/// and scrubs its response from the in-flight table (on arrival if need
/// be).
pub struct InFlightGet {
    op: UcrInFlight,
}

impl InFlightGet {
    /// True once the response has landed in the in-flight table, i.e.
    /// [`complete`](InFlightGet::complete) will not block.
    pub fn is_ready(&self) -> bool {
        self.op.cli.ucr_ready(self.op.req_id)
    }

    /// The request id this get travels under (diagnostics/tests).
    pub fn req_id(&self) -> u64 {
        self.op.req_id
    }

    /// Waits for the response and decodes it.
    pub async fn complete(self) -> Result<Option<Value>, McError> {
        let cli = self.op.cli.clone();
        decode_get_resp(cli.ucr_complete(self.op).await?)
    }
}

/// A store issued but not yet completed — the handle half of the
/// issue/complete split (UCR transports). Dropping it abandons the op
/// and scrubs its response from the in-flight table (on arrival if need
/// be).
pub struct InFlightSet {
    op: UcrInFlight,
}

impl InFlightSet {
    /// True once the response has landed in the in-flight table, i.e.
    /// [`complete`](InFlightSet::complete) will not block.
    pub fn is_ready(&self) -> bool {
        self.op.cli.ucr_ready(self.op.req_id)
    }

    /// The request id this store travels under (diagnostics/tests).
    pub fn req_id(&self) -> u64 {
        self.op.req_id
    }

    /// Waits for the response and decodes it.
    pub async fn complete(self) -> Result<(), McError> {
        let cli = self.op.cli.clone();
        let (resp, _) = cli.ucr_complete(self.op).await?;
        status_to_result(resp.status)
    }
}

impl CliInner {
    fn route(&self, key: &[u8]) -> usize {
        let n = self.cfg.servers.len();
        if n == 1 {
            return 0;
        }
        let h = self.cfg.key_hash.hash(key);
        match self.cfg.distribution {
            Distribution::Modula => (h as usize) % n,
            Distribution::Ketama => {
                let pos = self.ring.partition_point(|(p, _)| *p < h);
                let (_, idx) = self.ring[pos % self.ring.len()];
                idx
            }
        }
    }

    async fn conn(&self, sidx: usize) -> Result<Rc<Conn>, McError> {
        if let Some(c) = self.conns.borrow().get(&sidx) {
            return Ok(c.clone());
        }
        let server = *self.cfg.servers.get(sidx).ok_or(McError::NoServers)?;
        let conn = match self.cfg.transport {
            Transport::Ucr | Transport::UcrRoce => {
                let rt = self.ucr.as_ref().ok_or(McError::Disconnected)?;
                let ep = rt
                    .connect(server, self.cfg.port, self.cfg.op_timeout)
                    .await
                    .map_err(|e| match e {
                        ucr::UcrError::Timeout => McError::Timeout,
                        _ => McError::Disconnected,
                    })?;
                Conn::Ucr(ep)
            }
            Transport::Sockets(stack) => {
                let sock = self
                    .socks
                    .connect(
                        stack,
                        self.node,
                        SocketAddr {
                            node: server,
                            port: self.cfg.port,
                        },
                        self.cfg.op_timeout,
                    )
                    .await
                    .map_err(|e| match e {
                        SockError::ConnectionTimeout => McError::Timeout,
                        _ => McError::Disconnected,
                    })?;
                // The behavior the paper sets explicitly (§VI).
                sock.set_nodelay(true);
                Conn::Sock(Rc::new(sock))
            }
            Transport::Udp(stack) => {
                // Bind an ephemeral local datagram socket.
                let mut port = 50_000u16;
                let sock = loop {
                    match self.socks.udp_bind(stack, self.node, port) {
                        Ok(s) => break s,
                        Err(_) if port < 60_000 => port += 1,
                        Err(_) => return Err(McError::Disconnected),
                    }
                };
                Conn::Udp {
                    sock: Rc::new(sock),
                    server: SocketAddr {
                        node: server,
                        port: self.cfg.port,
                    },
                }
            }
        };
        let conn = Rc::new(conn);
        self.conns.borrow_mut().insert(sidx, conn.clone());
        Ok(conn)
    }

    /// Sends AM 1 and blocks on the counter until AM 2 lands (§V-B).
    /// Issue and completion are split so the batch APIs can keep several
    /// requests in flight; depth-1 callers go through both halves
    /// back-to-back, which is the exact classic sequence.
    async fn ucr_round_trip(
        self: &Rc<Self>,
        ep: &Endpoint,
        build: impl FnOnce(u64, u64) -> ReqHeader,
        data: Vec<u8>,
    ) -> Result<(RespHeader, Vec<u8>), McError> {
        let op = self.ucr_issue(ep, build, data).await?;
        self.ucr_complete(op).await
    }

    /// Issue half: allocates a request id + completion counter, sends
    /// AM 1, and returns the in-flight handle. Resolves when the staged
    /// request is handed to the HCA — everything up to that point is
    /// client-side serialization.
    async fn ucr_issue(
        self: &Rc<Self>,
        ep: &Endpoint,
        build: impl FnOnce(u64, u64) -> ReqHeader,
        data: Vec<u8>,
    ) -> Result<UcrInFlight, McError> {
        let rt = self.ucr.as_ref().ok_or(McError::Disconnected)?;
        let req_id = self.next_req.get();
        self.next_req.set(req_id + 1);
        let ctr = rt.counter();
        let req = build(req_id, ctr.id());
        self.span(|sp| sp.begin(req_id, self.sim.now()));
        self.tracer.begin(
            Layer::Core,
            "client_op",
            self.node,
            Track::Main,
            req_id,
            data.len() as u64,
            self.sim.now(),
        );
        let sent = ep
            .send_message_owned(MSG_MC_REQ, &req.encode(), data, SendOptions::default())
            .await;
        if sent.is_err() {
            self.span(|sp| sp.discard(req_id));
            self.end_op(req_id, 0);
            return Err(McError::Disconnected);
        }
        self.span(|sp| sp.mark(req_id, Stage::ClientSerialize, self.sim.now()));
        // Profiler marker: the request left the node — the issue stage of
        // the critical path ends here (detail only).
        self.tracer.instant_detail(
            Layer::Core,
            "client_sent",
            self.node,
            Track::Main,
            req_id,
            0,
            self.sim.now(),
        );
        Ok(UcrInFlight {
            req_id,
            ctr,
            cli: self.clone(),
            completed: false,
        })
    }

    /// Completion half: waits on the request's counter (responses for
    /// *other* in-flight requests may land first — the handler parks them
    /// in the table by request id) and claims the parked response.
    async fn ucr_complete(&self, mut op: UcrInFlight) -> Result<(RespHeader, Vec<u8>), McError> {
        if op.ctr.wait_for(1, self.cfg.op_timeout).await.is_err() {
            // Server presumed dead: the corrective action of §IV-A. The
            // op's `Drop` discards its spans and flags the request id so
            // a late-arriving response is dropped, not parked forever.
            return Err(McError::Timeout);
        }
        op.completed = true;
        let resp = self.pending.borrow_mut().remove(&op.req_id);
        match resp {
            Some(resp) => {
                self.span(|sp| sp.finish(op.req_id, self.sim.now()));
                self.end_op(op.req_id, resp.1.len() as u64);
                Ok(resp)
            }
            None => {
                self.span(|sp| sp.discard(op.req_id));
                self.end_op(op.req_id, 0);
                Err(McError::Protocol)
            }
        }
    }

    /// True once the response for an issued request is parked in the
    /// in-flight table, i.e. completing it will not block.
    fn ucr_ready(&self, req_id: u64) -> bool {
        self.pending.borrow().contains_key(&req_id)
    }

    // -----------------------------------------------------------------
    // Bypass-GET path: client-direct RDMA read of server slab memory
    // -----------------------------------------------------------------

    /// The store's unix clock as this client sees it (same epoch and
    /// virtual time as the server), for local expiry checks on cached
    /// descriptors — lazy expiration never bumps an item's version word,
    /// so the clock is the only staleness signal for expired items.
    fn now_secs(&self) -> u32 {
        BASE_UNIX_TIME + self.sim.now().as_secs_f64() as u32
    }

    /// Attempts a bypass get. `Some(result)` means the one-sided path
    /// settled the operation (hit or authoritative miss); `None` means
    /// the caller should fall back to the AM round trip.
    async fn bypass_get(
        &self,
        sidx: usize,
        am_ep: &Endpoint,
        key: &[u8],
    ) -> Option<Result<Option<Value>, McError>> {
        let rt = self.ucr.as_ref()?.clone();
        let span_id = self.next_req.get();
        self.next_req.set(span_id + 1);
        self.tracer.begin(
            Layer::Core,
            "bypass_get",
            self.node,
            Track::Main,
            span_id,
            key.len() as u64,
            self.sim.now(),
        );
        let out = self.bypass_get_inner(&rt, sidx, am_ep, key).await;
        if out.is_none() {
            rt.stats().bypass_fallbacks.inc();
        }
        self.tracer.end(
            Layer::Core,
            "bypass_get",
            self.node,
            Track::Main,
            span_id,
            out.is_some() as u64,
            self.sim.now(),
        );
        out
    }

    async fn bypass_get_inner(
        &self,
        rt: &UcrRuntime,
        sidx: usize,
        am_ep: &Endpoint,
        key: &[u8],
    ) -> Option<Result<Option<Value>, McError>> {
        let ckey = (sidx, key.to_vec());
        for _attempt in 0..=BYPASS_RETRIES {
            // Resolve a descriptor: cached if present, else one
            // directory round trip (which also primes the cache).
            let cached = self.bypass_cache.borrow().get(&ckey).copied();
            let desc = match cached {
                Some(d) => d,
                None => match self.dir_lookup(rt, am_ep, key).await {
                    Ok(Some(d)) => {
                        self.cache_descriptor(ckey.clone(), d);
                        d
                    }
                    Ok(None) => return Some(Ok(None)), // authoritative miss
                    Err(_) => return None,             // directory unreachable
                },
            };
            if desc.exp != 0 && desc.exp <= self.now_secs() {
                // Expired under us: drop the descriptor and re-resolve —
                // the directory answers miss once the item is dead.
                self.uncache_descriptor(&ckey);
                continue;
            }
            match self.bypass_read(rt, sidx, &desc).await {
                BypassRead::Ok(data) => {
                    rt.stats().bypass_reads.inc();
                    return Some(Ok(Some(Value {
                        data,
                        flags: desc.flags,
                        cas: desc.cas,
                    })));
                }
                BypassRead::Skew => {
                    // A writer raced the read: refetch and retry.
                    rt.stats().bypass_retries.inc();
                    self.uncache_descriptor(&ckey);
                }
                BypassRead::Failed => {
                    // Stale rkey (the server retired the mirror page) or
                    // endpoint fault: only the AM path is trustworthy now.
                    self.uncache_descriptor(&ckey);
                    return None;
                }
            }
        }
        self.uncache_descriptor(&ckey);
        None
    }

    /// One item-directory round trip over the AM connection. The server
    /// answers inline from its progress engine — no worker is woken.
    /// `Ok(None)` is an authoritative miss.
    async fn dir_lookup(
        &self,
        rt: &UcrRuntime,
        ep: &Endpoint,
        key: &[u8],
    ) -> Result<Option<CachedDescriptor>, McError> {
        let req_id = self.next_req.get();
        self.next_req.set(req_id + 1);
        let ctr = rt.counter();
        let req = DirReq {
            req_id,
            ctr_id: ctr.id(),
            key: key.to_vec(),
        };
        if ep
            .send_message_owned(
                MSG_MC_DIR_REQ,
                &req.encode(),
                Vec::new(),
                SendOptions::default(),
            )
            .await
            .is_err()
        {
            return Err(McError::Disconnected);
        }
        if ctr.wait_for(1, self.cfg.op_timeout).await.is_err() {
            // Flag the id so a late answer is dropped, not parked forever.
            self.cancelled.borrow_mut().insert(req_id);
            return Err(McError::Timeout);
        }
        let Some(resp) = self.dir_pending.borrow_mut().remove(&req_id) else {
            return Err(McError::Protocol);
        };
        if !resp.found {
            return Ok(None);
        }
        Ok(Some(CachedDescriptor {
            remote: MemoryDescriptor {
                node: NodeId(resp.node),
                rkey: resp.rkey,
                offset: resp.offset,
                len: resp.len,
            },
            vlen: resp.vlen,
            flags: resp.flags,
            cas: resp.cas,
            exp: resp.exp,
            version: resp.version,
        }))
    }

    /// Posts one one-sided RDMA read of the descriptor's window and
    /// validates the trailing seqlock version word.
    async fn bypass_read(
        &self,
        rt: &UcrRuntime,
        sidx: usize,
        desc: &CachedDescriptor,
    ) -> BypassRead {
        let len = desc.remote.len as usize;
        if len < BYPASS_VERSION_BYTES || desc.vlen as usize > len - BYPASS_VERSION_BYTES {
            return BypassRead::Failed; // malformed window
        }
        let buf = self.bypass_scratch(rt, len);
        let Some(ep) = self.bypass_ep(sidx).await else {
            return BypassRead::Failed;
        };
        let ctr = rt.counter();
        if ep.get(&buf, 0, desc.remote, Some(ctr.clone())).is_err() {
            self.drop_bypass_ep(sidx);
            return BypassRead::Failed;
        }
        // A faulted read (deregistered rkey after a mirror-page
        // retirement) never bumps the counter — it poisons the endpoint
        // at completion time. Wait one transfer-scaled slice first so the
        // fault is caught when it lands instead of after the full
        // operation timeout.
        let slice = SimDuration::from_micros(200 + len as u64 / 100).min(self.cfg.op_timeout);
        if ctr.wait_for(1, slice).await.is_err() {
            if ep.is_failed() {
                self.drop_bypass_ep(sidx);
                return BypassRead::Failed;
            }
            let rest = self.cfg.op_timeout.saturating_sub(slice);
            if ctr.wait_for(1, rest).await.is_err() {
                self.drop_bypass_ep(sidx);
                return BypassRead::Failed;
            }
        }
        let bytes = buf.read(0, len);
        let mut word = [0u8; BYPASS_VERSION_BYTES];
        word.copy_from_slice(&bytes[len - BYPASS_VERSION_BYTES..]);
        if u64::from_le_bytes(word) != desc.version {
            return BypassRead::Skew;
        }
        BypassRead::Ok(bytes[..desc.vlen as usize].to_vec())
    }

    /// Scratch landing region of at least `len` bytes, grown by
    /// power-of-two doubling (the old region's MR drops with it).
    fn bypass_scratch(&self, rt: &UcrRuntime, len: usize) -> Rc<UcrMemory> {
        let mut slot = self.bypass_buf.borrow_mut();
        if let Some(m) = slot.as_ref() {
            if m.len() >= len {
                return m.clone();
            }
        }
        let m = Rc::new(rt.register_memory(len.next_power_of_two().max(4096)));
        *slot = Some(m.clone());
        m
    }

    /// The dedicated one-sided endpoint for server `sidx`, dialed on
    /// first use and re-dialed after a fault dropped it. Kept separate
    /// from the AM connection because a failed one-sided op poisons its
    /// endpoint.
    async fn bypass_ep(&self, sidx: usize) -> Option<Endpoint> {
        if let Some(ep) = self.bypass_eps.borrow().get(&sidx) {
            if !ep.is_failed() {
                return Some(ep.clone());
            }
        }
        let server = *self.cfg.servers.get(sidx)?;
        let rt = self.ucr.as_ref()?;
        let ep = rt
            .connect(server, self.cfg.port, self.cfg.op_timeout)
            .await
            .ok()?;
        self.bypass_eps.borrow_mut().insert(sidx, ep.clone());
        Some(ep)
    }

    /// Forgets (and closes) the one-sided endpoint for `sidx`.
    fn drop_bypass_ep(&self, sidx: usize) {
        if let Some(ep) = self.bypass_eps.borrow_mut().remove(&sidx) {
            ep.close();
        }
    }

    /// Caches a descriptor under the FIFO bound.
    fn cache_descriptor(&self, key: (usize, Vec<u8>), d: CachedDescriptor) {
        let mut cache = self.bypass_cache.borrow_mut();
        let mut order = self.bypass_order.borrow_mut();
        if cache.insert(key.clone(), d).is_none() {
            order.push_back(key);
            while cache.len() > self.cfg.bypass_cache_cap.max(1) {
                let Some(old) = order.pop_front() else { break };
                cache.remove(&old);
            }
        }
    }

    /// Drops a cached descriptor (miss, version skew, read fault).
    fn uncache_descriptor(&self, key: &(usize, Vec<u8>)) {
        self.bypass_cache.borrow_mut().remove(key);
    }

    /// Accounts `n` batch ops that silently degraded to sequential round
    /// trips (binary-protocol and UDP connections have no pipelined batch
    /// path). The `client.nodeN.batch_fallback_ops` counter is created on
    /// first degrade so non-degraded runs keep the registry unchanged.
    fn count_batch_fallback(&self, n: u64) {
        let mut slot = self.batch_fallback.borrow_mut();
        let ctr = slot.get_or_insert_with(|| {
            self.metrics
                .counter(&format!("client.node{}.batch_fallback_ops", self.node.0))
        });
        ctr.add(n);
    }

    /// Closes the `client_op` trace span for a request.
    fn end_op(&self, req_id: u64, bytes: u64) {
        self.tracer.end(
            Layer::Core,
            "client_op",
            self.node,
            Track::Main,
            req_id,
            bytes,
            self.sim.now(),
        );
    }

    /// Runs `f` against the attached span sink, if any.
    fn span(&self, f: impl FnOnce(&LatencySpans)) {
        if let Some(sp) = self.spans.borrow().as_ref() {
            f(sp);
        }
    }

    /// One request/response over a non-UCR connection: ASCII or binary
    /// over a stream socket, or the framed UDP protocol.
    async fn sock_round_trip(&self, conn: &Conn, cmd: &Command) -> Result<Response, McError> {
        let sock = match conn {
            Conn::Sock(sock) => sock,
            Conn::Udp { sock, server } => {
                return self.udp_round_trip(sock, *server, cmd).await;
            }
            Conn::Ucr(_) => unreachable!("UCR ops use ucr_round_trip"),
        };
        if self.cfg.binary_protocol {
            return self.sock_round_trip_bin(sock, cmd).await;
        }
        let span_id = self.begin_sock_span();
        let wire = encode_command(cmd);
        if sock.write_all(&wire).await.is_err() {
            self.close_sock_span(span_id, false);
            return Err(McError::Disconnected);
        }
        // The write has cleared the send path: serialization is done.
        self.span(|sp| sp.mark(span_id, Stage::ClientSerialize, self.sim.now()));
        self.sock_sent_marker(span_id);
        let sock = sock.clone();
        let fut: Pin<Box<dyn std::future::Future<Output = Result<Response, McError>>>> =
            Box::pin(async move {
                let mut buf = Vec::new();
                loop {
                    match parse_response(&buf) {
                        Ok(Some((resp, _used))) => return Ok(resp),
                        Ok(None) => match sock.read(64 * 1024).await {
                            Ok(bytes) => buf.extend_from_slice(&bytes),
                            Err(_) => return Err(McError::Disconnected),
                        },
                        Err(_) => return Err(McError::Protocol),
                    }
                }
            });
        let out = match timeout(&self.sim, self.cfg.op_timeout, fut).await {
            Ok(r) => r,
            Err(_) => Err(McError::Timeout),
        };
        self.close_sock_span(span_id, out.is_ok());
        out
    }

    /// Opens a latency span for a socket round trip. The ASCII wire has no
    /// request id, so the span id is purely client-local. In profiler
    /// (detail) mode the round trip also gets a `client_op` trace span, so
    /// sockets ops appear on the critical-path stream like UCR ops do —
    /// server-side sockets events correlate via the profiler's
    /// single-open-op rule (the server's op-id domain is its own).
    fn begin_sock_span(&self) -> u64 {
        let span_id = self.next_req.get();
        self.next_req.set(span_id + 1);
        self.span(|sp| sp.begin(span_id, self.sim.now()));
        self.tracer.begin_detail(
            Layer::Core,
            "client_op",
            self.node,
            Track::Main,
            span_id,
            0,
            self.sim.now(),
        );
        span_id
    }

    /// Profiler marker for the sockets path: the request bytes have
    /// cleared the send path (detail only).
    fn sock_sent_marker(&self, span_id: u64) {
        self.tracer.instant_detail(
            Layer::Core,
            "client_sent",
            self.node,
            Track::Main,
            span_id,
            0,
            self.sim.now(),
        );
    }

    /// Closes (or abandons) a socket round-trip span: the response is
    /// fully parsed, so reply-wire time ends here and the residue is the
    /// client completion stage.
    fn close_sock_span(&self, span_id: u64, ok: bool) {
        if ok {
            self.span(|sp| {
                sp.mark(span_id, Stage::ReplyWire, self.sim.now());
                sp.finish(span_id, self.sim.now());
            });
            self.tracer.instant_detail(
                Layer::Core,
                "client_reply",
                self.node,
                Track::Main,
                span_id,
                0,
                self.sim.now(),
            );
        } else {
            self.span(|sp| sp.discard(span_id));
        }
        self.tracer.end_detail(
            Layer::Core,
            "client_op",
            self.node,
            Track::Main,
            span_id,
            0,
            self.sim.now(),
        );
    }

    /// Evicts a stream connection from the cache and closes it. A
    /// pipelined batch that fails partway leaves up to `depth - 1`
    /// responses unread on the socket; a later op reusing the connection
    /// would parse those stale responses as its own, so the socket must
    /// be forced through a reconnect instead.
    fn evict_sock(&self, sock: &Rc<Socket>) {
        sock.close();
        self.conns
            .borrow_mut()
            .retain(|_, c| !matches!(&**c, Conn::Sock(s) if Rc::ptr_eq(s, sock)));
    }

    /// Pipelined ASCII round trips: writes up to `depth` commands ahead
    /// of the reads and parses the FIFO responses with a persistent
    /// buffer (one read may deliver the tail of response N glued to the
    /// head of response N+1). Per-op latency spans are not recorded —
    /// overlapping requests have no single wire residence to attribute.
    /// Every failure evicts the connection: the response stream is out of
    /// sync with the writes, so it cannot be reused.
    async fn sock_pipeline(
        &self,
        sock: &Rc<Socket>,
        cmds: &[Command],
        depth: usize,
    ) -> Result<Vec<Response>, McError> {
        let mut out = Vec::with_capacity(cmds.len());
        let mut buf: Vec<u8> = Vec::new();
        let mut sent = 0usize;
        while out.len() < cmds.len() {
            while sent < cmds.len() && sent - out.len() < depth {
                let wire = encode_command(&cmds[sent]);
                if sock.write_all(&wire).await.is_err() {
                    self.evict_sock(sock);
                    return Err(McError::Disconnected);
                }
                sent += 1;
            }
            let sock2 = sock.clone();
            let carried = std::mem::take(&mut buf);
            type RespFut<'a> = Pin<
                Box<dyn std::future::Future<Output = Result<(Response, Vec<u8>), McError>> + 'a>,
            >;
            let fut: RespFut<'_> = Box::pin(async move {
                let mut buf = carried;
                loop {
                    match parse_response(&buf) {
                        Ok(Some((resp, used))) => {
                            buf.drain(..used);
                            return Ok((resp, buf));
                        }
                        Ok(None) => match sock2.read(64 * 1024).await {
                            Ok(bytes) => buf.extend_from_slice(&bytes),
                            Err(_) => return Err(McError::Disconnected),
                        },
                        Err(_) => return Err(McError::Protocol),
                    }
                }
            });
            match timeout(&self.sim, self.cfg.op_timeout, fut).await {
                Ok(Ok((resp, rest))) => {
                    buf = rest;
                    out.push(resp);
                }
                Ok(Err(e)) => {
                    self.evict_sock(sock);
                    return Err(e);
                }
                Err(_) => {
                    self.evict_sock(sock);
                    return Err(McError::Timeout);
                }
            }
        }
        Ok(out)
    }
}

impl CliInner {
    /// Binary-protocol round trip: translates the command to frames
    /// (multiget becomes a GetKQ pipeline closed by Noop — the protocol's
    /// signature optimization), sends, and folds the response frames back
    /// into the common `Response` shape.
    async fn sock_round_trip_bin(
        &self,
        sock: &Rc<Socket>,
        cmd: &Command,
    ) -> Result<Response, McError> {
        let frames = command_to_frames(cmd);
        let Some(terminal) = frames.last() else {
            return Err(McError::Protocol);
        };
        let terminal_opaque = terminal.opaque;
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.encode());
        }
        let span_id = self.begin_sock_span();
        if sock.write_all(&wire).await.is_err() {
            self.close_sock_span(span_id, false);
            return Err(McError::Disconnected);
        }
        self.span(|sp| sp.mark(span_id, Stage::ClientSerialize, self.sim.now()));
        self.sock_sent_marker(span_id);

        let sock = sock.clone();
        let is_stat = matches!(cmd, Command::Stats { .. });
        let fut: Pin<Box<dyn std::future::Future<Output = Result<Vec<BinFrame>, McError>>>> =
            Box::pin(async move {
                let mut buf = Vec::new();
                let mut got = Vec::new();
                loop {
                    match BinFrame::parse(&buf) {
                        Ok(Some((frame, used))) => {
                            buf.drain(..used);
                            let done = if is_stat {
                                frame.key.is_empty() && frame.value.is_empty()
                            } else {
                                frame.opaque == terminal_opaque
                            };
                            got.push(frame);
                            if done {
                                return Ok(got);
                            }
                        }
                        Ok(None) => match sock.read(64 * 1024).await {
                            Ok(bytes) => buf.extend_from_slice(&bytes),
                            Err(_) => return Err(McError::Disconnected),
                        },
                        Err(_) => return Err(McError::Protocol),
                    }
                }
            });
        let frames = match timeout(&self.sim, self.cfg.op_timeout, fut).await {
            Ok(Ok(r)) => r,
            other => {
                self.close_sock_span(span_id, false);
                return match other {
                    Ok(Err(e)) => Err(e),
                    _ => Err(McError::Timeout),
                };
            }
        };
        self.close_sock_span(span_id, true);
        frames_to_response(cmd, frames)
    }

    /// The memcached UDP protocol (SIII): one framed request datagram,
    /// response datagrams reassembled by request id. Loss (including
    /// receiver-buffer overflow at a hot server) surfaces as a timeout —
    /// exactly the operational hazard Facebook's UDP deployment managed.
    async fn udp_round_trip(
        &self,
        sock: &Rc<DgramSocket>,
        server: SocketAddr,
        cmd: &Command,
    ) -> Result<Response, McError> {
        let wire = encode_command(cmd);
        if wire.len() > UDP_CHUNK_BYTES {
            return Err(McError::TooLarge); // requests must fit one datagram
        }
        let req_id = (self.next_req.get() & 0xffff) as u16;
        self.next_req.set(self.next_req.get() + 1);
        let datagrams = udp_fragment(req_id, &wire);
        for d in &datagrams {
            sock.send_to(server, d)
                .await
                .map_err(|_| McError::Disconnected)?;
        }
        let sock = sock.clone();
        let fut: Pin<Box<dyn std::future::Future<Output = Result<Response, McError>>>> =
            Box::pin(async move {
                let mut frames: Vec<(UdpFrame, Vec<u8>)> = Vec::new();
                loop {
                    let (_, datagram) =
                        sock.recv_from().await.map_err(|_| McError::Disconnected)?;
                    let Ok((frame, payload)) = UdpFrame::decode(&datagram) else {
                        continue;
                    };
                    if frame.request_id != req_id {
                        continue; // stale response from a timed-out request
                    }
                    frames.push((frame, payload.to_vec()));
                    if let Some(whole) = mcproto::udp_reassemble(req_id, &frames) {
                        return match parse_response(&whole) {
                            Ok(Some((resp, _))) => Ok(resp),
                            _ => Err(McError::Protocol),
                        };
                    }
                }
            });
        match timeout(&self.sim, self.cfg.op_timeout, fut).await {
            Ok(r) => r,
            Err(_) => Err(McError::Timeout),
        }
    }
}

/// Encodes one logical command as binary frames. Multi-key fetches become
/// quiet GetKQ frames closed by a Noop; everything else is one frame.
fn command_to_frames(cmd: &Command) -> Vec<BinFrame> {
    let mut opaque = 1u32;
    let mut next = || {
        opaque += 1;
        opaque
    };
    match cmd {
        Command::Store {
            verb,
            key,
            flags,
            exptime,
            data,
            noreply: _,
        } => {
            let opcode = match verb {
                StoreVerb::Set => BinOpcode::Set,
                StoreVerb::Add => BinOpcode::Add,
                StoreVerb::Replace => BinOpcode::Replace,
                StoreVerb::Append => BinOpcode::Append,
                StoreVerb::Prepend => BinOpcode::Prepend,
            };
            let mut f = BinFrame::request(opcode, next());
            if !matches!(verb, StoreVerb::Append | StoreVerb::Prepend) {
                f.extras = store_extras(*flags, *exptime);
            }
            f.key = key.clone();
            f.value = data.clone();
            vec![f]
        }
        Command::Cas {
            key,
            flags,
            exptime,
            cas,
            data,
            noreply: _,
        } => {
            let mut f = BinFrame::request(BinOpcode::Set, next());
            f.extras = store_extras(*flags, *exptime);
            f.key = key.clone();
            f.value = data.clone();
            f.cas = *cas;
            vec![f]
        }
        Command::Get { keys } | Command::Gets { keys } => {
            if keys.len() == 1 {
                let mut f = BinFrame::request(BinOpcode::GetK, next());
                f.key = keys[0].clone();
                vec![f]
            } else {
                let mut out: Vec<BinFrame> = keys
                    .iter()
                    .map(|k| {
                        let mut f = BinFrame::request(BinOpcode::GetKQ, next());
                        f.key = k.clone();
                        f
                    })
                    .collect();
                out.push(BinFrame::request(BinOpcode::Noop, next()));
                out
            }
        }
        Command::Delete { key, noreply: _ } => {
            let mut f = BinFrame::request(BinOpcode::Delete, next());
            f.key = key.clone();
            vec![f]
        }
        Command::Incr {
            key,
            delta,
            noreply: _,
        } => {
            let mut f = BinFrame::request(BinOpcode::Increment, next());
            f.key = key.clone();
            f.extras = arith_extras(*delta, 0, u32::MAX);
            vec![f]
        }
        Command::Decr {
            key,
            delta,
            noreply: _,
        } => {
            let mut f = BinFrame::request(BinOpcode::Decrement, next());
            f.key = key.clone();
            f.extras = arith_extras(*delta, 0, u32::MAX);
            vec![f]
        }
        Command::Touch {
            key,
            exptime,
            noreply: _,
        } => {
            let mut f = BinFrame::request(BinOpcode::Touch, next());
            f.key = key.clone();
            f.extras = exptime.to_be_bytes().to_vec();
            vec![f]
        }
        Command::FlushAll { delay, noreply: _ } => {
            let mut f = BinFrame::request(BinOpcode::Flush, next());
            if *delay > 0 {
                f.extras = delay.to_be_bytes().to_vec();
            }
            vec![f]
        }
        Command::Stats { .. } => vec![BinFrame::request(BinOpcode::Stat, next())],
        Command::Version => vec![BinFrame::request(BinOpcode::Version, next())],
        Command::Quit => vec![BinFrame::request(BinOpcode::Quit, next())],
    }
}

/// Folds binary response frames back into the shared `Response` shape.
fn frames_to_response(cmd: &Command, frames: Vec<BinFrame>) -> Result<Response, McError> {
    match cmd {
        Command::Get { .. } | Command::Gets { .. } => {
            let mut values = Vec::new();
            for f in frames {
                match f.opcode {
                    BinOpcode::GetK | BinOpcode::GetKQ => {
                        if f.status() == Some(BinStatus::Ok) {
                            let flags = f
                                .extras
                                .as_slice()
                                .try_into()
                                .map(u32::from_be_bytes)
                                .unwrap_or(0);
                            values.push(GetValue {
                                key: f.key,
                                flags,
                                data: f.value,
                                cas: Some(f.cas),
                            });
                        }
                    }
                    BinOpcode::Noop => {}
                    _ => return Err(McError::Protocol),
                }
            }
            Ok(Response::Values(values))
        }
        Command::Stats { .. } => {
            let mut stats = Vec::new();
            for f in frames {
                if f.key.is_empty() {
                    break;
                }
                stats.push((
                    String::from_utf8_lossy(&f.key).into_owned(),
                    String::from_utf8_lossy(&f.value).into_owned(),
                ));
            }
            Ok(Response::Stats(stats))
        }
        _ => {
            let f = frames.last().ok_or(McError::Protocol)?;
            let status = f.status().ok_or(McError::Protocol)?;
            Ok(match (status, cmd) {
                (BinStatus::Ok, Command::Incr { .. } | Command::Decr { .. }) => {
                    let n = f
                        .value
                        .as_slice()
                        .try_into()
                        .map(u64::from_be_bytes)
                        .map_err(|_| McError::Protocol)?;
                    Response::Number(n)
                }
                (BinStatus::Ok, Command::Delete { .. }) => Response::Deleted,
                (BinStatus::Ok, Command::Touch { .. }) => Response::Touched,
                (BinStatus::Ok, Command::Version) => {
                    Response::Version(String::from_utf8_lossy(&f.value).into_owned())
                }
                (BinStatus::Ok, Command::FlushAll { .. }) => Response::Ok,
                (BinStatus::Ok, _) => Response::Stored,
                (BinStatus::KeyNotFound, _) => Response::NotFound,
                (BinStatus::KeyExists, _) => Response::Exists,
                (BinStatus::NotStored, _) => Response::NotStored,
                (BinStatus::TooLarge, _) => Response::ServerError("object too large".into()),
                (BinStatus::OutOfMemory, _) => Response::ServerError("out of memory".into()),
                (BinStatus::NonNumeric, _) => {
                    Response::ClientError("cannot increment or decrement non-numeric value".into())
                }
                (BinStatus::InvalidArgs | BinStatus::UnknownCommand, _) => Response::Error,
            })
        }
    }
}

impl Drop for CliInner {
    fn drop(&mut self) {
        for (_, conn) in self.conns.borrow_mut().drain() {
            match &*conn {
                Conn::Ucr(ep) => ep.close(),
                Conn::Sock(sock) => sock.close(),
                Conn::Udp { .. } => {} // the socket unbinds on drop
            }
        }
    }
}
