//! Acceptance tests for the store lock-contention models (`StoreModel`):
//! schedule equivalence of `Sharded(1)` and the default `Idealized`
//! model, global-lock serialization and its contention counters, mget
//! scatter/gather over shard-affine workers, per-shard metrics on the
//! `stats prom` surface, socket-path ordering under sharding, and bypass
//! GET invalidation against a segmented store on both clusters.

use rmc::{
    McClient, McClientConfig, McServer, McServerConfig, StoreModel, Transport, Value, World,
};
use simnet::{NodeId, SimDuration, SimTime, Stack};

const SRV: NodeId = NodeId(0);
const CLI: NodeId = NodeId(1);

fn server_config(model: StoreModel, workers: usize) -> McServerConfig {
    McServerConfig {
        workers,
        store_model: model,
        ..McServerConfig::default()
    }
}

/// Runs the same concurrent keyed workload under `model` and returns the
/// end-of-run virtual clock plus every response, in a deterministic
/// order.
fn run_workload(model: StoreModel, workers: usize) -> (SimTime, Vec<(String, Option<Value>)>) {
    let world = World::cluster_b(7, 8);
    let _server = McServer::start(&world, SRV, server_config(model, workers));
    let sim = world.sim().clone();
    let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    for cli in 0..3u32 {
        let c = McClient::new(&world, CLI, McClientConfig::single(Transport::Ucr, SRV));
        let out = results.clone();
        sim.spawn(async move {
            for i in 0..40u32 {
                let key = format!("c{cli}-k{i}");
                let val = format!("v{cli}-{i}");
                c.set(key.as_bytes(), val.as_bytes(), 0, 0).await.unwrap();
                let got = c.get(key.as_bytes()).await.unwrap();
                out.borrow_mut().push((key, got));
            }
        });
    }
    let end = sim.run();
    let mut out = std::rc::Rc::try_unwrap(results).unwrap().into_inner();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    (end, out)
}

#[test]
fn sharded_one_matches_idealized_schedule() {
    // With one worker, `Sharded(1)` routes everything exactly where the
    // round-robin binding would have: the lock is never contended, costs
    // zero virtual time, and the split fixed+hash sleep sums to the
    // idealized single charge — so the virtual-time schedule (end clock)
    // and every response must be identical.
    let (end_ideal, out_ideal) = run_workload(StoreModel::Idealized, 1);
    let (end_sharded, out_sharded) = run_workload(StoreModel::Sharded(1), 1);
    assert_eq!(end_ideal, end_sharded, "virtual end clocks diverged");
    assert_eq!(out_ideal.len(), out_sharded.len());
    for (a, b) in out_ideal.iter().zip(&out_sharded) {
        assert_eq!(a.0, b.0);
        let (va, vb) = (a.1.as_ref().unwrap(), b.1.as_ref().unwrap());
        assert_eq!(va.data, vb.data, "key {}", a.0);
        assert_eq!(va.cas, vb.cas, "key {}", a.0);
    }
}

#[test]
fn global_lock_flattens_worker_scaling() {
    // The same parallel workload under the global lock must finish no
    // faster with 8 workers than the contention ceiling allows, and the
    // lock's own accounting must show the contention.
    let (end_ideal, _) = run_workload(StoreModel::Idealized, 8);
    let (end_locked, _) = run_workload(StoreModel::GlobalLock, 8);
    assert!(
        end_locked >= end_ideal,
        "a lock cannot make the run faster: {end_locked:?} < {end_ideal:?}"
    );
}

#[test]
fn global_lock_contention_counters_and_prom() {
    let world = World::cluster_b(11, 8);
    let server = McServer::start(&world, SRV, server_config(StoreModel::GlobalLock, 4));
    let sim = world.sim().clone();
    // Three clients each keep a deep pipeline in flight, so three worker
    // threads stay busy back-to-back and collide on the one lock.
    for cli in 0..3u32 {
        let c = McClient::new(
            &world,
            CLI,
            McClientConfig {
                pipeline_depth: 8,
                ..McClientConfig::single(Transport::Ucr, SRV)
            },
        );
        sim.spawn(async move {
            let keys: Vec<String> = (0..30u32).map(|i| format!("g{cli}-{i}")).collect();
            let items: Vec<(&[u8], &[u8])> =
                keys.iter().map(|k| (k.as_bytes(), b"x" as &[u8])).collect();
            for r in c.set_many(&items, 0, 0).await.unwrap() {
                r.unwrap();
            }
        });
    }
    sim.run();
    let stats = server.lock_stats();
    assert_eq!(stats.len(), 1, "GlobalLock has exactly one lock");
    assert_eq!(stats[0].acquires, 90, "every op acquires the lock once");
    assert!(
        stats[0].contended > 0,
        "parallel workers must have collided"
    );
    assert!(stats[0].wait_total > SimDuration::ZERO);
    assert!(stats[0].hold_total > SimDuration::ZERO);
    // The same numbers must be visible on the metrics surface.
    let m = world.cluster.metrics();
    assert_eq!(m.counter_value("mc.node0.shard0.ops"), 90);
    assert_eq!(
        m.counter_value("mc.node0.shard0.contended"),
        stats[0].contended
    );
    assert_eq!(
        m.counter_value("mc.node0.shard0.lock_wait_ns"),
        stats[0].wait_total.as_nanos()
    );
}

#[test]
fn idealized_registers_no_shard_metrics() {
    let world = World::cluster_b(11, 8);
    let server = McServer::start(&world, SRV, McServerConfig::default());
    let c = McClient::new(&world, CLI, McClientConfig::single(Transport::Ucr, SRV));
    let sim = world.sim().clone();
    let lines = sim.block_on(async move {
        c.set(b"k", b"v", 0, 0).await.unwrap();
        c.stats_report("prom").await.unwrap()
    });
    assert!(server.lock_stats().is_empty());
    assert!(
        !lines.iter().any(|(k, v)| {
            k.contains(".shard") || v.contains(".shard") || k.contains("lock_wait")
        }),
        "default model must not leak shard series into prom output"
    );
}

#[test]
fn sharded_prom_exposes_per_shard_series() {
    let world = World::cluster_b(13, 8);
    let server = McServer::start(&world, SRV, server_config(StoreModel::Sharded(4), 4));
    let c = McClient::new(&world, CLI, McClientConfig::single(Transport::Ucr, SRV));
    let sim = world.sim().clone();
    let lines = sim.block_on(async move {
        for i in 0..64u32 {
            let key = format!("spread-{i}");
            c.set(key.as_bytes(), b"v", 0, 0).await.unwrap();
        }
        c.stats_report("prom").await.unwrap()
    });
    assert_eq!(server.shard_count(), 4);
    let stats = server.lock_stats();
    assert_eq!(stats.len(), 4);
    // Uniform keys must spread over all shards (balance at server level).
    for (s, st) in stats.iter().enumerate() {
        assert!(st.acquires > 0, "shard {s} never acquired its lock");
    }
    let text: String = lines
        .iter()
        .map(|(k, v)| format!("{k} {v}\n"))
        .collect::<String>();
    for s in 0..4 {
        for series in ["ops", "lock_wait_ns", "lock_hold_ns", "contended"] {
            let labelled = format!("shard=\"{s}\"");
            assert!(
                text.contains(&labelled),
                "prom output missing shard label {s}"
            );
            assert!(
                text.contains(&format!("mc_{series}")) || text.contains(series),
                "prom output missing {series} family"
            );
        }
    }
}

#[test]
fn sharded_mget_preserves_per_key_results() {
    // The same mget must return identical entries, in identical order,
    // whether it is served whole (Idealized) or split per shard and
    // merged (Sharded with multiple workers).
    let mut reference: Option<Vec<(Vec<u8>, Vec<u8>)>> = None;
    for model in [StoreModel::Idealized, StoreModel::Sharded(8)] {
        let world = World::cluster_b(17, 8);
        let _server = McServer::start(&world, SRV, server_config(model, 4));
        let c = McClient::new(&world, CLI, McClientConfig::single(Transport::Ucr, SRV));
        let sim = world.sim().clone();
        let got = sim.block_on(async move {
            for i in 0..24u32 {
                let key = format!("mg-{i}");
                let val = format!("val-{i}");
                c.set(key.as_bytes(), val.as_bytes(), 0, 0).await.unwrap();
            }
            // Mixed hits and misses, shard-interleaved request order.
            let keys: Vec<Vec<u8>> = (0..24u32)
                .map(|i| format!("mg-{i}").into_bytes())
                .chain([b"mg-miss-a".to_vec(), b"mg-miss-b".to_vec()])
                .collect();
            let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
            c.mget(&refs).await.unwrap()
        });
        let entries: Vec<(Vec<u8>, Vec<u8>)> = got.into_iter().map(|(k, v)| (k, v.data)).collect();
        assert_eq!(entries.len(), 24, "misses are dropped, hits kept");
        match &reference {
            None => reference = Some(entries),
            Some(want) => assert_eq!(want, &entries, "{model:?} diverged"),
        }
    }
}

#[test]
fn sharded_sockets_keep_request_order() {
    // ASCII multi-key get over a byte-stream transport visits shards
    // group by group but must still answer in request order.
    let world = World::cluster_a(19, 8);
    let _server = McServer::start(&world, SRV, server_config(StoreModel::Sharded(4), 2));
    let c = McClient::new(
        &world,
        CLI,
        McClientConfig::single(Transport::Sockets(Stack::Sdp), SRV),
    );
    let sim = world.sim().clone();
    sim.block_on(async move {
        for i in 0..16u32 {
            let key = format!("sk-{i}");
            let val = format!("sv-{i}");
            c.set(key.as_bytes(), val.as_bytes(), 0, 0).await.unwrap();
        }
        let keys: Vec<Vec<u8>> = (0..16u32).map(|i| format!("sk-{i}").into_bytes()).collect();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let got = c.mget(&refs).await.unwrap();
        assert_eq!(got.len(), 16);
        for (i, (k, v)) in got.iter().enumerate() {
            assert_eq!(k, &format!("sk-{i}").into_bytes(), "order broke at {i}");
            assert_eq!(v.data, format!("sv-{i}").into_bytes());
        }
        // Full command set still behaves through the shard router.
        c.incr(b"sk-n", 1).await.unwrap_err();
        c.set(b"sk-n", b"41", 0, 0).await.unwrap();
        assert_eq!(c.incr(b"sk-n", 1).await.unwrap(), 42);
        assert!(c.delete(b"sk-3").await.unwrap());
        assert_eq!(c.get(b"sk-3").await.unwrap(), None);
    });
}

#[test]
fn bypass_get_invalidates_per_segment() {
    // The one-sided GET path against a segmented store, on both clusters:
    // descriptors resolve through the owning segment's mirror, and every
    // mutation path (overwrite, delete) invalidates only that segment's
    // pages — readers see fresh data or fall back, never stale bytes.
    for (name, world) in [
        ("cluster_a", World::cluster_a(23, 8)),
        ("cluster_b", World::cluster_b(23, 8)),
    ] {
        let _server = McServer::start(&world, SRV, server_config(StoreModel::Sharded(4), 4));
        let c = McClient::new(
            &world,
            CLI,
            McClientConfig {
                bypass_get: true,
                ..McClientConfig::single(Transport::Ucr, SRV)
            },
        );
        let sim = world.sim().clone();
        sim.block_on(async move {
            for i in 0..16u32 {
                let key = format!("bp-{i}");
                let val = format!("bv-{i}");
                c.set(key.as_bytes(), val.as_bytes(), i, 0).await.unwrap();
            }
            // First reads warm the per-segment descriptors; repeats hit
            // the one-sided path.
            for round in 0..2 {
                for i in 0..16u32 {
                    let key = format!("bp-{i}");
                    let v = c.get(key.as_bytes()).await.unwrap().unwrap();
                    assert_eq!(v.data, format!("bv-{i}").into_bytes(), "{name} r{round}");
                }
            }
            // Overwrites must invalidate the owning segment's mirror.
            for i in 0..16u32 {
                let key = format!("bp-{i}");
                let val = format!("NEW-{i}");
                c.set(key.as_bytes(), val.as_bytes(), 0, 0).await.unwrap();
                let v = c.get(key.as_bytes()).await.unwrap().unwrap();
                assert_eq!(v.data, format!("NEW-{i}").into_bytes(), "{name} stale");
            }
            // Deletes: the bypass read must fall back to a miss.
            for i in 0..16u32 {
                let key = format!("bp-{i}");
                assert!(c.delete(key.as_bytes()).await.unwrap());
                assert_eq!(c.get(key.as_bytes()).await.unwrap(), None, "{name}");
            }
        });
    }
}
