//! End-to-end tests for the RDMA-capable Memcached: every transport on
//! both clusters, the full command set, large-value rendezvous, mixed
//! client families, multi-server routing, fault tolerance, and the
//! latency relationships the paper reports.

use rmc::{
    Distribution, McClient, McClientConfig, McError, McServer, McServerConfig, Transport, World,
};
use simnet::{NodeId, SimDuration, Stack};

const SRV: NodeId = NodeId(0);
const CLI: NodeId = NodeId(1);

fn world_a() -> World {
    World::cluster_a(77, 8)
}

fn world_b() -> World {
    World::cluster_b(77, 8)
}

fn client(world: &World, transport: Transport) -> McClient {
    McClient::new(world, CLI, McClientConfig::single(transport, SRV))
}

fn all_transports_a() -> Vec<Transport> {
    vec![
        Transport::Ucr,
        Transport::Sockets(Stack::Sdp),
        Transport::Sockets(Stack::Ipoib),
        Transport::Sockets(Stack::TenGigEToe),
        Transport::Sockets(Stack::OneGigE),
    ]
}

#[test]
fn full_command_set_over_every_transport() {
    for transport in all_transports_a() {
        let world = world_a();
        let _server = McServer::start(&world, SRV, McServerConfig::default());
        let c = client(&world, transport);
        world.sim().block_on(async move {
            // set / get
            c.set(b"k1", b"v1", 5, 0).await.unwrap();
            let v = c.get(b"k1").await.unwrap().unwrap();
            assert_eq!(v.data, b"v1");
            assert_eq!(v.flags, 5);

            // add / replace
            assert_eq!(c.add(b"k1", b"x", 0, 0).await, Err(McError::NotStored));
            c.add(b"k2", b"fresh", 0, 0).await.unwrap();
            c.replace(b"k2", b"newer", 0, 0).await.unwrap();
            assert_eq!(
                c.replace(b"missing", b"x", 0, 0).await,
                Err(McError::NotStored)
            );

            // append / prepend
            c.append(b"k2", b"-tail").await.unwrap();
            c.prepend(b"k2", b"head-").await.unwrap();
            assert_eq!(
                c.get(b"k2").await.unwrap().unwrap().data,
                b"head-newer-tail"
            );

            // cas
            let v = c.get(b"k1").await.unwrap().unwrap();
            c.cas(b"k1", b"v2", 0, 0, v.cas).await.unwrap();
            assert_eq!(c.cas(b"k1", b"v3", 0, 0, v.cas).await, Err(McError::Exists));

            // incr / decr
            c.set(b"n", b"41", 0, 0).await.unwrap();
            assert_eq!(c.incr(b"n", 1).await.unwrap(), 42);
            assert_eq!(c.decr(b"n", 100).await.unwrap(), 0);
            assert_eq!(c.incr(b"missing", 1).await, Err(McError::NotFound));
            c.set(b"txt", b"abc", 0, 0).await.unwrap();
            assert_eq!(c.incr(b"txt", 1).await, Err(McError::NotNumeric));

            // delete / touch
            assert!(c.delete(b"k2").await.unwrap());
            assert!(!c.delete(b"k2").await.unwrap());
            assert!(c.touch(b"k1", 60).await.unwrap());
            assert!(!c.touch(b"k2", 60).await.unwrap());

            // mget
            c.set(b"m1", b"a", 0, 0).await.unwrap();
            c.set(b"m2", b"b", 0, 0).await.unwrap();
            let got = c.mget(&[b"m1", b"m2", b"nope"]).await.unwrap();
            assert_eq!(got.len(), 2, "{transport:?}");

            // version / stats / flush_all
            let ver = c.version().await.unwrap();
            assert!(ver.contains("rmc"), "version {ver}");
            let stats = c.stats().await.unwrap();
            assert!(stats.iter().any(|(k, _)| k == "get_hits"));
            c.flush_all().await.unwrap();
            // flush_all invalidates items stored in earlier (strictly
            // older) seconds; the simulated clock advances sub-second in
            // this test, so verify via a fresh second-boundary instead:
            // the command round-trips without error, which is what the
            // transport layer must guarantee.
        });
    }
}

#[test]
fn large_values_travel_by_rendezvous() {
    // 64 KB and 300 KB: both directions of the UCR path must use the
    // RDMA-read rendezvous (set: server pulls; get: client pulls).
    let world = world_b();
    let _server = McServer::start(&world, SRV, McServerConfig::default());
    let c = client(&world, Transport::Ucr);
    world.sim().block_on(async move {
        for size in [64 * 1024usize, 300 * 1024] {
            let value: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
            let key = format!("big-{size}");
            c.set(key.as_bytes(), &value, 0, 0).await.unwrap();
            let got = c.get(key.as_bytes()).await.unwrap().unwrap();
            assert_eq!(got.data, value, "size {size}");
        }
    });
}

#[test]
fn oversized_value_is_rejected() {
    let world = world_a();
    let _server = McServer::start(&world, SRV, McServerConfig::default());
    let c = client(&world, Transport::Ucr);
    world.sim().block_on(async move {
        let too_big = vec![0u8; 2 << 20];
        assert_eq!(c.set(b"huge", &too_big, 0, 0).await, Err(McError::TooLarge));
    });
}

#[test]
fn sockets_and_ucr_clients_share_one_server() {
    // The design goal of §V-A: the same server serves both families, on
    // the same data.
    let world = world_a();
    let server = McServer::start(&world, SRV, McServerConfig::default());
    let ucr_client = client(&world, Transport::Ucr);
    let sdp_client = McClient::new(
        &world,
        NodeId(2),
        McClientConfig::single(Transport::Sockets(Stack::Sdp), SRV),
    );
    world.sim().block_on(async move {
        ucr_client.set(b"shared", b"from-ucr", 0, 0).await.unwrap();
        let v = sdp_client.get(b"shared").await.unwrap().unwrap();
        assert_eq!(v.data, b"from-ucr");
        sdp_client.set(b"shared", b"from-sdp", 0, 0).await.unwrap();
        let v = ucr_client.get(b"shared").await.unwrap().unwrap();
        assert_eq!(v.data, b"from-sdp");
    });
    assert!(server.stats().ucr_requests.get() >= 2);
    assert!(server.stats().sock_requests.get() >= 2);
}

#[test]
fn keys_distribute_across_servers() {
    let world = world_a();
    let s1 = McServer::start(&world, NodeId(0), McServerConfig::default());
    let s2 = McServer::start(&world, NodeId(1), McServerConfig::default());
    let s3 = McServer::start(&world, NodeId(2), McServerConfig::default());
    let cfg = McClientConfig {
        transport: Transport::Ucr,
        servers: vec![NodeId(0), NodeId(1), NodeId(2)],
        port: 11211,
        op_timeout: SimDuration::from_millis(250),
        distribution: Distribution::Modula,
        ..McClientConfig::single(Transport::Ucr, NodeId(0))
    };
    let c = McClient::new(&world, NodeId(3), cfg);
    // Routing must cover all three servers.
    let mut seen = [false; 3];
    for i in 0..100 {
        seen[c.route(format!("key-{i}").as_bytes())] = true;
    }
    assert_eq!(seen, [true; 3], "modula must spread keys");

    world.sim().block_on({
        let c = c.clone();
        async move {
            for i in 0..60 {
                let key = format!("key-{i}");
                c.set(key.as_bytes(), key.as_bytes(), 0, 0).await.unwrap();
            }
            for i in 0..60 {
                let key = format!("key-{i}");
                let v = c.get(key.as_bytes()).await.unwrap().unwrap();
                assert_eq!(v.data, key.as_bytes());
            }
            // mget across servers groups per server and merges.
            let keys: Vec<String> = (0..20).map(|i| format!("key-{i}")).collect();
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
            let got = c.mget(&refs).await.unwrap();
            assert_eq!(got.len(), 20);
        }
    });
    let total = s1.curr_items() + s2.curr_items() + s3.curr_items();
    assert_eq!(total, 60);
    assert!(s1.curr_items() > 0 && s2.curr_items() > 0 && s3.curr_items() > 0);
}

#[test]
fn ketama_distribution_is_stable_under_server_loss() {
    let world = world_a();
    let servers = vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
    let cfg = |srvs: Vec<NodeId>| McClientConfig {
        transport: Transport::Ucr,
        servers: srvs,
        port: 11211,
        op_timeout: SimDuration::from_millis(100),
        distribution: Distribution::Ketama,
        ..McClientConfig::single(Transport::Ucr, NodeId(0))
    };
    let c4 = McClient::new(&world, NodeId(4), cfg(servers.clone()));
    let c3 = McClient::new(&world, NodeId(5), cfg(servers[..3].to_vec()));
    // With one server removed, most keys must keep their mapping —
    // the consistent-hashing property (and why libmemcached offers it).
    let n = 1000;
    let moved = (0..n)
        .filter(|i| {
            let key = format!("item:{i}");
            let a = c4.route(key.as_bytes());
            let b = c3.route(key.as_bytes());
            a != b && a != 3 // keys on the removed server must move
        })
        .count();
    let on_removed = (0..n)
        .filter(|i| c4.route(format!("item:{i}").as_bytes()) == 3)
        .count();
    assert!(on_removed > 100, "removed server held {on_removed} keys");
    assert!(
        moved < n / 8,
        "ketama moved {moved}/{n} keys not on the removed server"
    );
}

#[test]
fn server_death_times_out_and_isolates() {
    let world = world_a();
    let dying = McServer::start(&world, NodeId(0), McServerConfig::default());
    let _healthy = McServer::start(&world, NodeId(1), McServerConfig::default());
    let c_dead = McClient::new(
        &world,
        NodeId(2),
        McClientConfig::single(Transport::Ucr, NodeId(0)),
    );
    let c_ok = McClient::new(
        &world,
        NodeId(3),
        McClientConfig::single(Transport::Ucr, NodeId(1)),
    );
    let sim = world.sim().clone();
    sim.block_on(async move {
        c_dead.set(b"k", b"v", 0, 0).await.unwrap();
        c_ok.set(b"k", b"v", 0, 0).await.unwrap();
        // Crash server 0.
        dying.shutdown();
        world.crash_node(NodeId(0));
        let mut cfg_timeout_hits = 0;
        match c_dead.get(b"k").await {
            Err(McError::Timeout) | Err(McError::Disconnected) => cfg_timeout_hits += 1,
            other => panic!("expected timeout against dead server, got {other:?}"),
        }
        assert_eq!(cfg_timeout_hits, 1);
        // The healthy deployment is unaffected (fault isolation, §IV-A).
        let v = c_ok.get(b"k").await.unwrap().unwrap();
        assert_eq!(v.data, b"v");
    });
}

#[test]
fn sockets_client_sees_server_death_too() {
    let world = world_a();
    let server = McServer::start(&world, SRV, McServerConfig::default());
    let c = client(&world, Transport::Sockets(Stack::TenGigEToe));
    let sim = world.sim().clone();
    sim.block_on(async move {
        c.set(b"k", b"v", 0, 0).await.unwrap();
        server.shutdown();
        world.crash_node(SRV);
        match c.get(b"k").await {
            Err(McError::Timeout) | Err(McError::Disconnected) => {}
            other => panic!("expected failure, got {other:?}"),
        }
    });
}

#[test]
fn get_latency_shape_matches_the_paper() {
    // 4 KB get: ~12 us QDR, ~20 us DDR (§VI headline), UCR ≥ 4x faster
    // than 10GigE-TOE, and 5-10x faster than IPoIB/SDP at small sizes.
    fn measure(cluster_b: bool, transport: Transport, size: usize) -> f64 {
        let world = if cluster_b { world_b() } else { world_a() };
        let _server = McServer::start(&world, SRV, McServerConfig::default());
        let c = client(&world, transport);
        let sim = world.sim().clone();
        let sim2 = sim.clone();
        sim.block_on(async move {
            let value = vec![9u8; size];
            c.set(b"probe", &value, 0, 0).await.unwrap();
            c.get(b"probe").await.unwrap().unwrap();
            let t0 = sim2.now();
            c.get(b"probe").await.unwrap().unwrap();
            (sim2.now() - t0).as_micros_f64()
        })
    }

    let ucr_4k_ddr = measure(false, Transport::Ucr, 4096);
    let ucr_4k_qdr = measure(true, Transport::Ucr, 4096);
    assert!(
        (15.0..26.0).contains(&ucr_4k_ddr),
        "4 KB UCR get on DDR: {ucr_4k_ddr} us (paper: ~20)"
    );
    assert!(
        (9.0..16.0).contains(&ucr_4k_qdr),
        "4 KB UCR get on QDR: {ucr_4k_qdr} us (paper: ~12)"
    );

    let ucr_small = measure(false, Transport::Ucr, 32);
    let toe_small = measure(false, Transport::Sockets(Stack::TenGigEToe), 32);
    let sdp_small = measure(false, Transport::Sockets(Stack::Sdp), 32);
    let ipoib_small = measure(false, Transport::Sockets(Stack::Ipoib), 32);
    assert!(
        toe_small / ucr_small >= 3.5,
        "TOE {toe_small} vs UCR {ucr_small}: factor {}",
        toe_small / ucr_small
    );
    let sdp_factor = sdp_small / ucr_small;
    let ipoib_factor = ipoib_small / ucr_small;
    assert!(
        (5.0..14.0).contains(&sdp_factor),
        "SDP/UCR factor {sdp_factor}"
    );
    assert!(
        (5.0..14.0).contains(&ipoib_factor),
        "IPoIB/UCR factor {ipoib_factor}"
    );
}

#[test]
fn many_clients_one_server_all_complete() {
    let world = world_b();
    let server = McServer::start(&world, SRV, McServerConfig::default());
    let sim = world.sim().clone();
    let mut joins = Vec::new();
    for i in 0..8u32 {
        let c = McClient::new(
            &world,
            NodeId(1 + (i % 7)),
            McClientConfig::single(Transport::Ucr, SRV),
        );
        joins.push(sim.spawn(async move {
            for j in 0..50u32 {
                let key = format!("c{i}-k{j}");
                c.set(key.as_bytes(), key.as_bytes(), 0, 0).await.unwrap();
                let v = c.get(key.as_bytes()).await.unwrap().unwrap();
                assert_eq!(v.data, key.as_bytes());
            }
        }));
    }
    sim.block_on(async move {
        for j in joins {
            j.await;
        }
    });
    assert_eq!(server.curr_items(), 8 * 50);
    let st = server.store_stats();
    assert_eq!(st.get_hits, 8 * 50);
}

// ---------------------------------------------------------------------
// RoCE extension (paper §VII)
// ---------------------------------------------------------------------

#[test]
fn ucr_roce_serves_the_full_workload() {
    // Same UCR code, converged Ethernet adapters (Cluster A only).
    let world = world_a();
    let server = McServer::start(&world, SRV, McServerConfig::default());
    let c = client(&world, Transport::UcrRoce);
    world.sim().block_on(async move {
        c.set(b"k", b"roce-value", 7, 0).await.unwrap();
        let v = c.get(b"k").await.unwrap().unwrap();
        assert_eq!(v.data, b"roce-value");
        assert_eq!(v.flags, 7);
        // Large value: rendezvous over RoCE.
        let big = vec![3u8; 100_000];
        c.set(b"big", &big, 0, 0).await.unwrap();
        assert_eq!(c.get(b"big").await.unwrap().unwrap().data, big);
    });
    assert!(server.roce_runtime().is_some());
    assert!(server.stats().ucr_requests.get() >= 4);
}

#[test]
fn roce_latency_sits_between_native_ib_and_toe() {
    fn get_lat(world: &World, transport: Transport) -> f64 {
        let c = client(world, transport);
        let sim = world.sim().clone();
        let sim2 = sim.clone();
        sim.block_on(async move {
            c.set(b"probe", &vec![1u8; 1024], 0, 0).await.unwrap();
            c.get(b"probe").await.unwrap();
            let t0 = sim2.now();
            for _ in 0..20 {
                c.get(b"probe").await.unwrap().unwrap();
            }
            (sim2.now() - t0).as_micros_f64() / 20.0
        })
    }
    let world = world_a();
    let _server = McServer::start(&world, SRV, McServerConfig::default());
    let ib = get_lat(&world, Transport::Ucr);
    let roce = get_lat(&world, Transport::UcrRoce);
    let toe = get_lat(&world, Transport::Sockets(Stack::TenGigEToe));
    assert!(
        ib < roce && roce < toe,
        "expected IB {ib:.1} < RoCE {roce:.1} < TOE {toe:.1}"
    );
}

#[test]
fn roce_unavailable_on_cluster_b() {
    let world = world_b();
    assert!(world.roce.is_none());
    let server = McServer::start(&world, SRV, McServerConfig::default());
    assert!(server.roce_runtime().is_none());
    assert!(server.ucr_runtime().is_some());
}

#[test]
fn mixed_roce_and_ib_clients_share_data() {
    let world = world_a();
    let _server = McServer::start(&world, SRV, McServerConfig::default());
    let ib_client = client(&world, Transport::Ucr);
    let roce_client = McClient::new(
        &world,
        NodeId(2),
        McClientConfig::single(Transport::UcrRoce, SRV),
    );
    world.sim().block_on(async move {
        ib_client.set(b"x", b"from-ib", 0, 0).await.unwrap();
        assert_eq!(
            roce_client.get(b"x").await.unwrap().unwrap().data,
            b"from-ib"
        );
        roce_client.set(b"x", b"from-roce", 0, 0).await.unwrap();
        assert_eq!(
            ib_client.get(b"x").await.unwrap().unwrap().data,
            b"from-roce"
        );
    });
}

#[test]
fn transport_labels_and_stacks() {
    assert_eq!(Transport::Ucr.label(), "UCR");
    assert_eq!(Transport::UcrRoce.label(), "UCR-RoCE");
    assert_eq!(Transport::Sockets(Stack::Sdp).label(), "SDP");
    assert_eq!(Transport::UcrRoce.stack(), Stack::Ucr);
}

// ---------------------------------------------------------------------
// Server behaviour details
// ---------------------------------------------------------------------

#[test]
fn stats_reflect_server_activity() {
    let world = world_b();
    let _server = McServer::start(&world, SRV, McServerConfig::default());
    let c = client(&world, Transport::Ucr);
    world.sim().block_on(async move {
        c.set(b"a", b"1", 0, 0).await.unwrap();
        c.get(b"a").await.unwrap();
        c.get(b"missing").await.unwrap();
        let stats = c.stats().await.unwrap();
        let get = |name: &str| -> u64 {
            stats
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.parse().unwrap())
                .unwrap_or_else(|| panic!("stat {name} missing"))
        };
        assert_eq!(get("get_hits"), 1);
        assert_eq!(get("get_misses"), 1);
        assert_eq!(get("cmd_set"), 1);
        assert_eq!(get("curr_items"), 1);
        assert!(get("ucr_requests") >= 3);
    });
}

#[test]
fn server_evicts_under_memory_pressure_end_to_end() {
    use mcstore::{SlabConfig, StoreConfig};
    let world = world_b();
    let server = McServer::start(
        &world,
        SRV,
        McServerConfig {
            store: StoreConfig {
                slab: SlabConfig {
                    mem_limit: 256 << 10,
                    page_size: 64 << 10,
                    ..SlabConfig::default()
                },
                ..StoreConfig::default()
            },
            ..McServerConfig::default()
        },
    );
    let c = client(&world, Transport::Ucr);
    world.sim().block_on(async move {
        // Push far more than fits: the server must keep accepting (LRU
        // eviction), never erroring out.
        for i in 0..600u32 {
            let key = format!("flood-{i}");
            c.set(key.as_bytes(), &vec![1u8; 1000], 0, 0).await.unwrap();
        }
        // Recent keys are present; the earliest were evicted.
        assert!(c.get(b"flood-599").await.unwrap().is_some());
        assert!(c.get(b"flood-0").await.unwrap().is_none());
    });
    assert!(server.store_stats().evictions > 0);
}

#[test]
fn workers_one_still_serves_many_clients() {
    // §V-A: "a worker thread can handle several clients at a time."
    let world = world_b();
    let _server = McServer::start(
        &world,
        SRV,
        McServerConfig {
            workers: 1,
            ..McServerConfig::default()
        },
    );
    let sim = world.sim().clone();
    let mut joins = Vec::new();
    for i in 0..6u32 {
        let c = McClient::new(
            &world,
            NodeId(1 + (i % 6)),
            McClientConfig::single(Transport::Ucr, SRV),
        );
        joins.push(sim.spawn(async move {
            for j in 0..20u32 {
                let key = format!("w1-{i}-{j}");
                c.set(key.as_bytes(), b"v", 0, 0).await.unwrap();
                assert!(c.get(key.as_bytes()).await.unwrap().is_some());
            }
        }));
    }
    sim.block_on(async move {
        for j in joins {
            j.await;
        }
    });
}

// ---------------------------------------------------------------------
// Binary protocol (libmemcached MEMCACHED_BEHAVIOR_BINARY_PROTOCOL)
// ---------------------------------------------------------------------

fn binary_client(world: &World, stack: Stack) -> McClient {
    let mut cfg = McClientConfig::single(Transport::Sockets(stack), SRV);
    cfg.binary_protocol = true;
    McClient::new(world, CLI, cfg)
}

#[test]
fn binary_protocol_full_command_set() {
    let world = world_a();
    let _server = McServer::start(&world, SRV, McServerConfig::default());
    let c = binary_client(&world, Stack::TenGigEToe);
    world.sim().block_on(async move {
        c.set(b"k1", b"v1", 5, 0).await.unwrap();
        let v = c.get(b"k1").await.unwrap().unwrap();
        assert_eq!(v.data, b"v1");
        assert_eq!(v.flags, 5);
        assert!(v.cas > 0);

        assert_eq!(c.add(b"k1", b"x", 0, 0).await, Err(McError::NotStored));
        c.add(b"k2", b"fresh", 0, 0).await.unwrap();
        c.replace(b"k2", b"newer", 0, 0).await.unwrap();
        c.append(b"k2", b"-tail").await.unwrap();
        c.prepend(b"k2", b"head-").await.unwrap();
        assert_eq!(
            c.get(b"k2").await.unwrap().unwrap().data,
            b"head-newer-tail"
        );

        let v = c.get(b"k1").await.unwrap().unwrap();
        c.cas(b"k1", b"v2", 0, 0, v.cas).await.unwrap();
        assert_eq!(c.cas(b"k1", b"v3", 0, 0, v.cas).await, Err(McError::Exists));

        c.set(b"n", b"41", 0, 0).await.unwrap();
        assert_eq!(c.incr(b"n", 1).await.unwrap(), 42);
        assert_eq!(c.decr(b"n", 100).await.unwrap(), 0);
        assert_eq!(c.incr(b"missing", 1).await, Err(McError::NotFound));

        assert!(c.delete(b"k2").await.unwrap());
        assert!(!c.delete(b"k2").await.unwrap());
        assert!(c.touch(b"k1", 60).await.unwrap());

        let ver = c.version().await.unwrap();
        assert!(ver.contains("rmc"));
        let stats = c.stats().await.unwrap();
        assert!(stats.iter().any(|(k, _)| k == "get_hits"));
        c.flush_all().await.unwrap();
    });
}

#[test]
fn binary_multiget_pipelines_quietly() {
    let world = world_a();
    let server = McServer::start(&world, SRV, McServerConfig::default());
    let c = binary_client(&world, Stack::Sdp);
    world.sim().block_on(async move {
        for i in 0..10u32 {
            let key = format!("bm-{i}");
            c.set(key.as_bytes(), key.as_bytes(), i, 0).await.unwrap();
        }
        let keys: Vec<String> = (0..12).map(|i| format!("bm-{i}")).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
        // 12 requested, 10 exist: quiet misses never produce frames.
        let got = c.mget(&refs).await.unwrap();
        assert_eq!(got.len(), 10);
        for (key, v) in got {
            assert_eq!(key, v.data);
        }
    });
    assert!(server.stats().sock_requests.get() >= 10);
}

#[test]
fn ascii_and_binary_clients_coexist_on_one_server() {
    let world = world_a();
    let _server = McServer::start(&world, SRV, McServerConfig::default());
    let bin = binary_client(&world, Stack::TenGigEToe);
    let ascii = McClient::new(
        &world,
        NodeId(2),
        McClientConfig::single(Transport::Sockets(Stack::TenGigEToe), SRV),
    );
    world.sim().block_on(async move {
        bin.set(b"shared", b"bin-wrote", 0, 0).await.unwrap();
        assert_eq!(
            ascii.get(b"shared").await.unwrap().unwrap().data,
            b"bin-wrote"
        );
        ascii.set(b"shared", b"ascii-wrote", 0, 0).await.unwrap();
        assert_eq!(
            bin.get(b"shared").await.unwrap().unwrap().data,
            b"ascii-wrote"
        );
    });
}

#[test]
fn binary_and_ascii_report_equal_results() {
    // Differential check: both protocols against the same command stream
    // must agree on every outcome.
    let world = world_a();
    let _server = McServer::start(&world, SRV, McServerConfig::default());
    let bin = binary_client(&world, Stack::Ipoib);
    let ascii = McClient::new(
        &world,
        NodeId(2),
        McClientConfig::single(Transport::Sockets(Stack::Ipoib), SRV),
    );
    world.sim().block_on(async move {
        for i in 0..30u32 {
            let key = format!("diff-{}", i % 7);
            let val = format!("value-{i}");
            match i % 5 {
                0 => {
                    let a = bin.set(key.as_bytes(), val.as_bytes(), 0, 0).await;
                    let b = ascii.set(key.as_bytes(), val.as_bytes(), 0, 0).await;
                    assert_eq!(a, b, "set {i}");
                }
                1 => {
                    let a = bin.get(key.as_bytes()).await.unwrap().map(|v| v.data);
                    let b = ascii.get(key.as_bytes()).await.unwrap().map(|v| v.data);
                    assert_eq!(a, b, "get {i}");
                }
                2 => {
                    // The two adds run back to back: if the first stored,
                    // the second must see NotStored; if the key already
                    // existed, both fail identically.
                    let a = bin.add(key.as_bytes(), b"x", 0, 0).await;
                    let b = ascii.add(key.as_bytes(), b"y", 0, 0).await;
                    if a.is_ok() {
                        assert_eq!(b, Err(McError::NotStored), "add {i}");
                    } else {
                        assert_eq!(a, Err(McError::NotStored), "add {i}");
                        assert_eq!(b, Err(McError::NotStored), "add {i}");
                    }
                }
                3 => {
                    // Back-to-back deletes: at most the first can hit.
                    let a = bin.delete(key.as_bytes()).await.unwrap();
                    let b = ascii.delete(key.as_bytes()).await.unwrap();
                    assert!(!(a && b), "both deletes cannot hit {i}");
                }
                _ => {
                    let a = bin.touch(key.as_bytes(), 60).await.unwrap();
                    let b = ascii.touch(key.as_bytes(), 60).await.unwrap();
                    assert_eq!(a, b, "touch {i} (key deleted by neither)");
                }
            }
        }
    });
}

// ---------------------------------------------------------------------
// UDP protocol (the SIII Facebook baseline)
// ---------------------------------------------------------------------

#[test]
fn udp_transport_serves_the_command_set() {
    let world = world_a();
    let _server = McServer::start(&world, SRV, McServerConfig::default());
    let c = client(&world, Transport::Udp(Stack::TenGigEToe));
    world.sim().block_on(async move {
        c.set(b"u1", b"udp-value", 9, 0).await.unwrap();
        let v = c.get(b"u1").await.unwrap().unwrap();
        assert_eq!(v.data, b"udp-value");
        assert_eq!(v.flags, 9);
        assert_eq!(c.incr(b"u1", 1).await, Err(McError::NotNumeric));
        c.set(b"n", b"1", 0, 0).await.unwrap();
        assert_eq!(c.incr(b"n", 41).await.unwrap(), 42);
        assert!(c.delete(b"u1").await.unwrap());
        assert!(c.get(b"u1").await.unwrap().is_none());
        // Version/stats work connectionless too.
        assert!(c.version().await.unwrap().contains("rmc"));
    });
}

#[test]
fn udp_reassembles_multi_datagram_responses() {
    // The Facebook deployment pattern: sets over TCP, gets over UDP.
    // A 10 KB value forces the UDP response to span ~8 datagrams.
    let world = world_a();
    let _server = McServer::start(&world, SRV, McServerConfig::default());
    let tcp = client(&world, Transport::Sockets(Stack::TenGigEToe));
    let udp = McClient::new(
        &world,
        NodeId(2),
        McClientConfig::single(Transport::Udp(Stack::TenGigEToe), SRV),
    );
    world.sim().block_on(async move {
        let value: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        tcp.set(b"big", &value, 0, 0).await.unwrap();
        let got = udp.get(b"big").await.unwrap().unwrap();
        assert_eq!(got.data, value);
    });
}

#[test]
fn udp_oversized_requests_are_rejected_client_side() {
    let world = world_a();
    let _server = McServer::start(&world, SRV, McServerConfig::default());
    let c = client(&world, Transport::Udp(Stack::TenGigEToe));
    world.sim().block_on(async move {
        // Requests must fit one datagram (real memcached's rule).
        let big = vec![1u8; 2000];
        assert_eq!(c.set(b"k", &big, 0, 0).await, Err(McError::TooLarge));
    });
}

#[test]
fn udp_loss_to_dead_server_times_out() {
    let world = world_a();
    let server = McServer::start(&world, SRV, McServerConfig::default());
    let c = client(&world, Transport::Udp(Stack::Ipoib));
    let sim = world.sim().clone();
    sim.block_on(async move {
        c.set(b"k", b"v", 0, 0).await.unwrap();
        server.shutdown();
        world.crash_node(SRV);
        match c.get(b"k").await {
            Err(McError::Timeout) | Err(McError::Disconnected) => {}
            other => panic!("expected UDP loss to time out, got {other:?}"),
        }
    });
}

#[test]
fn udp_and_tcp_share_the_same_store() {
    let world = world_a();
    let _server = McServer::start(&world, SRV, McServerConfig::default());
    let udp = client(&world, Transport::Udp(Stack::TenGigEToe));
    let tcp = McClient::new(
        &world,
        NodeId(2),
        McClientConfig::single(Transport::Sockets(Stack::TenGigEToe), SRV),
    );
    world.sim().block_on(async move {
        udp.set(b"x", b"via-udp", 0, 0).await.unwrap();
        assert_eq!(tcp.get(b"x").await.unwrap().unwrap().data, b"via-udp");
    });
}

// ---------------------------------------------------------------------
// Client behaviors: hash functions
// ---------------------------------------------------------------------

#[test]
fn key_hash_functions_are_correct_and_distinct() {
    use rmc::{crc32, fnv1a_32, one_at_a_time, KeyHash};
    // Known-answer tests.
    assert_eq!(fnv1a_32(b""), 0x811c_9dc5);
    assert_eq!(fnv1a_32(b"a"), 0xe40c_292c);
    assert_eq!(crc32(b""), 0);
    assert_eq!(crc32(b"123456789"), 0xcbf4_3926); // the classic check value
    assert_eq!(one_at_a_time(b""), 0);
    // The three functions route differently in general.
    let key = b"some-key";
    let hashes = [
        KeyHash::OneAtATime.hash(key),
        KeyHash::Fnv1a32.hash(key),
        KeyHash::Crc32.hash(key),
    ];
    assert_ne!(hashes[0], hashes[1]);
    assert_ne!(hashes[1], hashes[2]);
}

#[test]
fn key_hash_behavior_changes_routing() {
    use rmc::KeyHash;
    let world = world_a();
    let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
    let mk = |h: KeyHash, node: u32| {
        McClient::new(
            &world,
            NodeId(node),
            McClientConfig {
                servers: servers.clone(),
                key_hash: h,
                ..McClientConfig::single(Transport::Ucr, NodeId(0))
            },
        )
    };
    let a = mk(KeyHash::OneAtATime, 4);
    let b = mk(KeyHash::Fnv1a32, 5);
    let mut diff = 0;
    let mut spread = [[false; 4]; 2];
    for i in 0..200 {
        let key = format!("route-{i}");
        let ra = a.route(key.as_bytes());
        let rb = b.route(key.as_bytes());
        spread[0][ra] = true;
        spread[1][rb] = true;
        if ra != rb {
            diff += 1;
        }
    }
    assert!(diff > 50, "different hashes should route differently");
    assert_eq!(spread[0], [true; 4], "one-at-a-time covers all servers");
    assert_eq!(spread[1], [true; 4], "fnv1a covers all servers");
}

#[test]
fn stats_subreports_expose_slabs_and_items() {
    for transport in [Transport::Ucr, Transport::Sockets(Stack::TenGigEToe)] {
        let world = world_a();
        let _server = McServer::start(&world, SRV, McServerConfig::default());
        let c = client(&world, transport);
        world.sim().block_on(async move {
            c.set(b"a", &[1u8; 100], 0, 0).await.unwrap();
            c.set(b"b", &vec![1u8; 5000], 0, 0).await.unwrap();
            let slabs = c.stats_report("slabs").await.unwrap();
            assert!(
                slabs
                    .iter()
                    .filter(|(k, _)| k.ends_with(":chunk_size"))
                    .count()
                    >= 2,
                "{transport:?}: two size classes in use: {slabs:?}"
            );
            let items = c.stats_report("items").await.unwrap();
            let total: u32 = items
                .iter()
                .filter(|(k, _)| k.ends_with(":number"))
                .map(|(_, v)| v.parse::<u32>().unwrap())
                .sum();
            assert_eq!(total, 2, "{transport:?}");
            // Unknown sub-report: empty but well-formed.
            assert!(c.stats_report("bogus").await.unwrap().is_empty());
        });
    }
}

// ---------------------------------------------------------------------
// Protocol efficiency: fabric message counts (network tracing)
// ---------------------------------------------------------------------

#[test]
fn ucr_get_costs_exactly_two_fabric_messages() {
    // §V-C: get = AM 1 (request) + AM 2 (response). Eager, no counters on
    // the request, no Fin — exactly two messages on the wire.
    let world = world_b();
    let _server = McServer::start(&world, SRV, McServerConfig::default());
    let c = client(&world, Transport::Ucr);
    let ib = world.cluster.ib().clone();
    world.sim().block_on(async move {
        c.set(b"k", &vec![1u8; 512], 0, 0).await.unwrap();
        c.get(b"k").await.unwrap().unwrap(); // warm
        ib.set_trace(true);
        c.get(b"k").await.unwrap().unwrap();
        let trace = ib.take_trace();
        assert_eq!(
            trace.len(),
            2,
            "eager get must be exactly AM1 + AM2: {trace:#?}"
        );
        // Request goes client→server, response server→client.
        assert_eq!((trace[0].src, trace[0].dst), (CLI, SRV));
        assert_eq!((trace[1].src, trace[1].dst), (SRV, CLI));
        // The response carries the 512-byte value (+ headers).
        assert!(trace[1].bytes > 512 && trace[1].bytes < 800);
    });
}

#[test]
fn ucr_large_set_uses_rendezvous_message_pattern() {
    // §V-B: large set = AM1 header + server RDMA read (request + data
    // response) + Fin + AM2 status = 5 fabric messages.
    let world = world_b();
    let _server = McServer::start(&world, SRV, McServerConfig::default());
    let c = client(&world, Transport::Ucr);
    let ib = world.cluster.ib().clone();
    world.sim().block_on(async move {
        c.set(b"warm", b"x", 0, 0).await.unwrap();
        ib.set_trace(true);
        c.set(b"big", &vec![7u8; 64 * 1024], 0, 0).await.unwrap();
        let trace = ib.take_trace();
        assert_eq!(trace.len(), 5, "rendezvous set message pattern: {trace:#?}");
        // Exactly one transfer carries the bulk data, flowing toward the
        // server (the RDMA read response).
        let bulk: Vec<_> = trace.iter().filter(|t| t.bytes > 60_000).collect();
        assert_eq!(bulk.len(), 1);
        assert_eq!(bulk[0].dst, SRV);
    });
}

#[test]
fn wire_overhead_is_fixed_for_ucr_and_grows_for_sockets() {
    // UCR frames a get with fixed-size typed headers, so its wire
    // overhead (bytes beyond the value) is constant in the value size.
    // Byte-stream stacks re-frame through MTU segments, so their overhead
    // grows with the value — one face of the semantic mismatch (SIII).
    fn overhead(world: &World, transport: Transport, size: u64) -> i64 {
        let c = client(world, transport);
        let net = match transport.stack().net() {
            simnet::NetKind::Ib => world.cluster.ib().clone(),
            k => world.cluster.network(k).unwrap().clone(),
        };
        world.sim().block_on(async move {
            c.set(b"k", &vec![1u8; size as usize], 0, 0).await.unwrap();
            c.get(b"k").await.unwrap().unwrap();
            net.set_trace(true);
            c.get(b"k").await.unwrap().unwrap();
            let total: u64 = net.take_trace().iter().map(|t| t.bytes).sum();
            net.set_trace(false);
            total as i64 - size as i64
        })
    }
    let world = world_a();
    let _server = McServer::start(&world, SRV, McServerConfig::default());
    let ucr_small = overhead(&world, Transport::Ucr, 64);
    let ucr_big = overhead(&world, Transport::Ucr, 4096);
    assert_eq!(ucr_small, ucr_big, "UCR overhead must not grow with size");

    let sdp_small = overhead(&world, Transport::Sockets(Stack::Sdp), 64);
    let sdp_big = overhead(&world, Transport::Sockets(Stack::Sdp), 4096);
    assert!(
        sdp_big > sdp_small,
        "segmented byte streams pay per-MTU overhead: {sdp_small} vs {sdp_big}"
    );
}
