//! Acceptance tests for the server-CPU-bypass GET path: client-direct
//! RDMA reads of the server's item memory, seqlock version validation,
//! descriptor invalidation on every mutation path (set / delete /
//! expiry / `flush_all` / slab migration), and the accounting that
//! proves a bypassed read never woke a server worker.

use rmc::{McClient, McClientConfig, McError, McServer, McServerConfig, Transport, World};
use simnet::{NodeId, SimDuration, Stack};

const SRV: NodeId = NodeId(0);
const CLI: NodeId = NodeId(1);

fn worlds() -> Vec<(&'static str, World)> {
    vec![
        ("cluster_a", World::cluster_a(77, 8)),
        ("cluster_b", World::cluster_b(77, 8)),
    ]
}

fn bypass_client(world: &World) -> McClient {
    McClient::new(
        world,
        CLI,
        McClientConfig {
            bypass_get: true,
            ..McClientConfig::single(Transport::Ucr, SRV)
        },
    )
}

/// Total progress-engine wakes across the server's worker pool.
fn worker_wakes(world: &World) -> u64 {
    (0..4)
        .map(|w| {
            world
                .cluster
                .metrics()
                .counter_value(&format!("mc.node{}.worker{w}.wakes", SRV.0))
        })
        .sum()
}

#[test]
fn bypass_get_reads_without_waking_workers() {
    for (name, world) in worlds() {
        let _server = McServer::start(&world, SRV, McServerConfig::default());
        let c = bypass_client(&world);
        let sim = world.sim().clone();
        sim.block_on(async move {
            for i in 0..8u32 {
                let key = format!("k{i}");
                let val = format!("value-{i}");
                c.set(key.as_bytes(), val.as_bytes(), i, 0).await.unwrap();
            }
            // Let the worker pool drain completely before snapshotting.
            world.sim().sleep(SimDuration::from_millis(10)).await;
            let wakes_before = worker_wakes(&world);

            let rt = c.ucr_runtime().unwrap();
            let reads_before = rt.stats().bypass_reads.get();
            for round in 0..3 {
                for i in 0..8u32 {
                    let key = format!("k{i}");
                    let v = c.get(key.as_bytes()).await.unwrap().unwrap();
                    assert_eq!(v.data, format!("value-{i}").as_bytes(), "{name} r{round}");
                    assert_eq!(v.flags, i, "{name}");
                }
            }
            // Every one of the 24 gets travelled the one-sided path…
            assert_eq!(
                rt.stats().bypass_reads.get() - reads_before,
                24,
                "{name}: all gets bypassed"
            );
            assert_eq!(rt.stats().bypass_fallbacks.get(), 0, "{name}");
            // …and not a single server worker woke up for them.
            assert_eq!(
                worker_wakes(&world),
                wakes_before,
                "{name}: bypassed reads must not wake workers"
            );
        });
    }
}

#[test]
fn concurrent_set_forces_version_skew_retry() {
    for (name, world) in worlds() {
        let _server = McServer::start(&world, SRV, McServerConfig::default());
        let c = bypass_client(&world);
        world.sim().block_on(async move {
            c.set(b"race", b"old-value", 0, 0).await.unwrap();
            // Prime the descriptor cache with the old chunk + version.
            assert_eq!(c.get(b"race").await.unwrap().unwrap().data, b"old-value");

            let rt = c.ucr_runtime().unwrap();
            let retries_before = rt.stats().bypass_retries.get();

            // The "concurrent" writer: by the time the client issues its
            // next one-sided read from the cached descriptor, the item has
            // been rewritten and the chunk's seqlock version bumped.
            c.set(b"race", b"new-value", 0, 0).await.unwrap();
            let v = c.get(b"race").await.unwrap().unwrap();
            assert_eq!(
                v.data, b"new-value",
                "{name}: skew retry returns fresh value"
            );
            assert!(
                rt.stats().bypass_retries.get() > retries_before
                    || rt.stats().bypass_fallbacks.get() > 0,
                "{name}: the stale descriptor was detected, not silently trusted"
            );
        });
    }
}

#[test]
fn delete_invalidates_descriptor_and_read_misses() {
    for (name, world) in worlds() {
        let _server = McServer::start(&world, SRV, McServerConfig::default());
        let c = bypass_client(&world);
        world.sim().block_on(async move {
            c.set(b"gone", b"short-lived", 0, 0).await.unwrap();
            assert!(c.get(b"gone").await.unwrap().is_some());

            assert!(c.delete(b"gone").await.unwrap());
            // The cached descriptor now names retired (deregistered)
            // mirror memory; the one-sided read must fault — never return
            // the old bytes — and the AM fallback reports the miss.
            assert_eq!(c.get(b"gone").await.unwrap(), None, "{name}");

            // The client recovers fully: store again, bypass again.
            c.set(b"gone", b"back", 0, 0).await.unwrap();
            let rt = c.ucr_runtime().unwrap();
            let reads_before = rt.stats().bypass_reads.get();
            assert_eq!(c.get(b"gone").await.unwrap().unwrap().data, b"back");
            assert!(
                rt.stats().bypass_reads.get() > reads_before,
                "{name}: bypass path healthy again after the fault"
            );
        });
    }
}

#[test]
fn expiry_is_honored_without_trusting_cached_descriptors() {
    let world = World::cluster_b(77, 8);
    let _server = McServer::start(&world, SRV, McServerConfig::default());
    let c = bypass_client(&world);
    let sim = world.sim().clone();
    sim.block_on(async move {
        c.set(b"ttl", b"soon-gone", 0, 1).await.unwrap();
        assert!(c.get(b"ttl").await.unwrap().is_some());

        // Lazy expiry never bumps the chunk version, so the client must
        // apply the expiry clock check locally before trusting the cache.
        world.sim().sleep(SimDuration::from_secs(2)).await;
        assert_eq!(c.get(b"ttl").await.unwrap(), None);
    });
}

#[test]
fn flush_all_invalidates_every_published_descriptor() {
    let world = World::cluster_b(77, 8);
    let _server = McServer::start(&world, SRV, McServerConfig::default());
    let c = bypass_client(&world);
    let sim = world.sim().clone();
    sim.block_on(async move {
        c.set(b"f1", b"alpha", 0, 0).await.unwrap();
        c.set(b"f2", b"beta", 0, 0).await.unwrap();
        assert!(c.get(b"f1").await.unwrap().is_some());
        assert!(c.get(b"f2").await.unwrap().is_some());

        // flush_all only invalidates items stored in strictly earlier
        // seconds; cross the boundary first.
        world.sim().sleep(SimDuration::from_secs(2)).await;
        c.flush_all().await.unwrap();

        assert_eq!(c.get(b"f1").await.unwrap(), None, "flushed via bypass path");
        assert_eq!(c.get(b"f2").await.unwrap(), None, "flushed via bypass path");
    });
}

#[test]
fn slab_migration_falls_back_then_republishes() {
    for (name, world) in worlds() {
        let _server = McServer::start(&world, SRV, McServerConfig::default());
        let c = bypass_client(&world);
        world.sim().block_on(async move {
            c.set(b"mover", b"tiny", 0, 0).await.unwrap();
            assert_eq!(c.get(b"mover").await.unwrap().unwrap().data, b"tiny");

            // Rewrite into a different slab class: the old chunk (and with
            // it the cached descriptor's page) is retired.
            let big = vec![0x5au8; 8 * 1024];
            c.set(b"mover", &big, 0, 0).await.unwrap();
            let v = c.get(b"mover").await.unwrap().unwrap();
            assert_eq!(v.data, big, "{name}: correct value after the move");

            // And the item is served one-sided again from its new home.
            let rt = c.ucr_runtime().unwrap();
            let reads_before = rt.stats().bypass_reads.get();
            assert_eq!(c.get(b"mover").await.unwrap().unwrap().data, big);
            assert!(
                rt.stats().bypass_reads.get() > reads_before,
                "{name}: new location republished for bypass"
            );
        });
    }
}

#[test]
fn bypass_disabled_client_is_unaffected() {
    // Control: the same workload with `bypass_get: false` never touches
    // the one-sided counters and still sees identical values.
    let world = World::cluster_b(77, 8);
    let _server = McServer::start(&world, SRV, McServerConfig::default());
    let c = McClient::new(&world, CLI, McClientConfig::single(Transport::Ucr, SRV));
    world.sim().block_on(async move {
        c.set(b"plain", b"value", 0, 0).await.unwrap();
        assert_eq!(c.get(b"plain").await.unwrap().unwrap().data, b"value");
        let rt = c.ucr_runtime().unwrap();
        assert_eq!(rt.stats().bypass_reads.get(), 0);
        assert_eq!(rt.stats().bypass_retries.get(), 0);
        assert_eq!(rt.stats().bypass_fallbacks.get(), 0);
    });
}

#[test]
fn batch_degrade_is_accounted_per_client() {
    // get_many / set_many on a binary-protocol (or UDP) connection
    // silently degrade to sequential round trips; that degrade must be
    // visible in the `client.nodeN.batch_fallback_ops` counter.
    let world = World::cluster_a(77, 8);
    let _server = McServer::start(&world, SRV, McServerConfig::default());
    let sock = McClient::new(
        &world,
        CLI,
        McClientConfig {
            binary_protocol: true,
            ..McClientConfig::single(Transport::Sockets(Stack::Sdp), SRV)
        },
    );
    let ucr = McClient::new(
        &world,
        NodeId(2),
        McClientConfig::single(Transport::Ucr, SRV),
    );
    let sim = world.sim().clone();
    sim.block_on(async move {
        sock.set_many(&[(b"b1".as_ref(), b"v1".as_ref()), (b"b2", b"v2")], 0, 0)
            .await
            .unwrap();
        let got = sock.get_many(&[b"b1", b"b2", b"nope"]).await.unwrap();
        assert_eq!(got.iter().flatten().count(), 2);
        assert_eq!(
            world
                .cluster
                .metrics()
                .counter_value(&format!("client.node{}.batch_fallback_ops", CLI.0)),
            5,
            "2 sets + 3 gets degraded sequentially"
        );

        // The UCR client batches natively: no fallback counter at all.
        ucr.set_many(&[(b"u1".as_ref(), b"v1".as_ref())], 0, 0)
            .await
            .unwrap();
        ucr.get_many(&[b"u1"]).await.unwrap();
        assert_eq!(
            world
                .cluster
                .metrics()
                .counter_value("client.node2.batch_fallback_ops"),
            0
        );
    });
}

#[test]
fn fallback_after_server_crash_reports_error_not_stale_value() {
    // Hard-fault path: the server dies between the directory lookup and
    // the next read. The bypass path must not fabricate a hit.
    let world = World::cluster_b(77, 8);
    let _server = McServer::start(&world, SRV, McServerConfig::default());
    let c = bypass_client(&world);
    let sim = world.sim().clone();
    sim.block_on(async move {
        c.set(b"k", b"v", 0, 0).await.unwrap();
        assert!(c.get(b"k").await.unwrap().is_some());
        world.crash_node(SRV);
        match c.get(b"k").await {
            Err(McError::Timeout) | Err(McError::Disconnected) => {}
            other => panic!("crashed server must surface an error, got {other:?}"),
        }
    });
}
