//! The memcached binary protocol (protocol version as of memcached 1.4).
//!
//! Every frame is a 24-byte header followed by `extras | key | value`.
//! libmemcached 0.45 speaks this when `MEMCACHED_BEHAVIOR_BINARY_PROTOCOL`
//! is set; servers of the era sniffed the first byte of a connection
//! (0x80 = binary request magic) to pick the protocol. The quiet opcodes
//! (GetQ/GetKQ) suppress miss responses, which is how binary multiget
//! pipelines: a train of GetKQ frames closed by a Noop.

use crate::ProtoError;

/// Request magic byte.
pub const MAGIC_REQUEST: u8 = 0x80;
/// Response magic byte.
pub const MAGIC_RESPONSE: u8 = 0x81;

/// Fixed header length.
pub const BIN_HEADER_BYTES: usize = 24;

/// Binary-protocol opcodes (subset shipped by memcached 1.4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum BinOpcode {
    /// Fetch a value.
    Get = 0x00,
    /// Store unconditionally.
    Set = 0x01,
    /// Store if absent.
    Add = 0x02,
    /// Store if present.
    Replace = 0x03,
    /// Remove a key.
    Delete = 0x04,
    /// Arithmetic increment (with optional initial value).
    Increment = 0x05,
    /// Arithmetic decrement.
    Decrement = 0x06,
    /// Close the connection.
    Quit = 0x07,
    /// Invalidate the cache.
    Flush = 0x08,
    /// Quiet get: misses produce no response.
    GetQ = 0x09,
    /// No-op: flushes a quiet pipeline.
    Noop = 0x0a,
    /// Server version.
    Version = 0x0b,
    /// Get returning the key in the response.
    GetK = 0x0c,
    /// Quiet GetK (binary multiget building block).
    GetKQ = 0x0d,
    /// Append to a value.
    Append = 0x0e,
    /// Prepend to a value.
    Prepend = 0x0f,
    /// One statistic (empty key = all, terminated by empty STAT).
    Stat = 0x10,
    /// Update expiration only.
    Touch = 0x1c,
}

impl BinOpcode {
    /// Decodes an opcode byte.
    pub fn from_u8(v: u8) -> Option<BinOpcode> {
        Some(match v {
            0x00 => BinOpcode::Get,
            0x01 => BinOpcode::Set,
            0x02 => BinOpcode::Add,
            0x03 => BinOpcode::Replace,
            0x04 => BinOpcode::Delete,
            0x05 => BinOpcode::Increment,
            0x06 => BinOpcode::Decrement,
            0x07 => BinOpcode::Quit,
            0x08 => BinOpcode::Flush,
            0x09 => BinOpcode::GetQ,
            0x0a => BinOpcode::Noop,
            0x0b => BinOpcode::Version,
            0x0c => BinOpcode::GetK,
            0x0d => BinOpcode::GetKQ,
            0x0e => BinOpcode::Append,
            0x0f => BinOpcode::Prepend,
            0x10 => BinOpcode::Stat,
            0x1c => BinOpcode::Touch,
            _ => return None,
        })
    }

    /// True for quiet opcodes (no response on miss/success-without-data).
    pub fn is_quiet(self) -> bool {
        matches!(self, BinOpcode::GetQ | BinOpcode::GetKQ)
    }
}

/// Binary response status codes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u16)]
pub enum BinStatus {
    /// Success.
    Ok = 0x0000,
    /// Key not found.
    KeyNotFound = 0x0001,
    /// Key exists (add / CAS mismatch).
    KeyExists = 0x0002,
    /// Value too large.
    TooLarge = 0x0003,
    /// Invalid arguments.
    InvalidArgs = 0x0004,
    /// Item not stored (replace/append/prepend miss).
    NotStored = 0x0005,
    /// incr/decr on a non-numeric value.
    NonNumeric = 0x0006,
    /// Unknown opcode.
    UnknownCommand = 0x0081,
    /// Out of memory.
    OutOfMemory = 0x0082,
}

impl BinStatus {
    /// Decodes a status word.
    pub fn from_u16(v: u16) -> Option<BinStatus> {
        Some(match v {
            0x0000 => BinStatus::Ok,
            0x0001 => BinStatus::KeyNotFound,
            0x0002 => BinStatus::KeyExists,
            0x0003 => BinStatus::TooLarge,
            0x0004 => BinStatus::InvalidArgs,
            0x0005 => BinStatus::NotStored,
            0x0006 => BinStatus::NonNumeric,
            0x0081 => BinStatus::UnknownCommand,
            0x0082 => BinStatus::OutOfMemory,
            _ => return None,
        })
    }
}

/// A binary-protocol frame (request or response share the layout; the
/// `vbucket_or_status` word is a vbucket id in requests and a status in
/// responses).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BinFrame {
    /// `MAGIC_REQUEST` or `MAGIC_RESPONSE`.
    pub magic: u8,
    /// Operation.
    pub opcode: BinOpcode,
    /// vbucket (requests) / status (responses).
    pub vbucket_or_status: u16,
    /// Client-chosen token echoed verbatim in the response.
    pub opaque: u32,
    /// CAS token.
    pub cas: u64,
    /// Extras block (flags/exptime/delta, opcode-specific).
    pub extras: Vec<u8>,
    /// Key bytes.
    pub key: Vec<u8>,
    /// Value bytes.
    pub value: Vec<u8>,
}

impl BinFrame {
    /// A request frame with empty body parts.
    pub fn request(opcode: BinOpcode, opaque: u32) -> BinFrame {
        BinFrame {
            magic: MAGIC_REQUEST,
            opcode,
            vbucket_or_status: 0,
            opaque,
            cas: 0,
            extras: Vec::new(),
            key: Vec::new(),
            value: Vec::new(),
        }
    }

    /// A response frame answering `req` with `status`.
    pub fn response(req: &BinFrame, status: BinStatus) -> BinFrame {
        BinFrame {
            magic: MAGIC_RESPONSE,
            opcode: req.opcode,
            vbucket_or_status: status as u16,
            opaque: req.opaque,
            cas: 0,
            extras: Vec::new(),
            key: Vec::new(),
            value: Vec::new(),
        }
    }

    /// The response status, if this is a response frame with a known code.
    pub fn status(&self) -> Option<BinStatus> {
        (self.magic == MAGIC_RESPONSE)
            .then(|| BinStatus::from_u16(self.vbucket_or_status))
            .flatten()
    }

    /// Serializes to the wire layout (network byte order, as specified).
    pub fn encode(&self) -> Vec<u8> {
        let total_body = self.extras.len() + self.key.len() + self.value.len();
        let mut out = Vec::with_capacity(BIN_HEADER_BYTES + total_body);
        out.push(self.magic);
        out.push(self.opcode as u8);
        out.extend_from_slice(&(self.key.len() as u16).to_be_bytes());
        out.push(self.extras.len() as u8);
        out.push(0); // data type: raw bytes
        out.extend_from_slice(&self.vbucket_or_status.to_be_bytes());
        out.extend_from_slice(&(total_body as u32).to_be_bytes());
        out.extend_from_slice(&self.opaque.to_be_bytes());
        out.extend_from_slice(&self.cas.to_be_bytes());
        out.extend_from_slice(&self.extras);
        out.extend_from_slice(&self.key);
        out.extend_from_slice(&self.value);
        out
    }

    /// Incremental parse: `Ok(None)` until a whole frame is buffered; on
    /// success returns the frame and bytes consumed.
    pub fn parse(buf: &[u8]) -> Result<Option<(BinFrame, usize)>, ProtoError> {
        if buf.len() < BIN_HEADER_BYTES {
            return Ok(None);
        }
        let magic = buf[0];
        if magic != MAGIC_REQUEST && magic != MAGIC_RESPONSE {
            return Err(ProtoError::Malformed("bad binary magic"));
        }
        let opcode =
            BinOpcode::from_u8(buf[1]).ok_or(ProtoError::Malformed("unknown binary opcode"))?;
        let key_len = u16::from_be_bytes([buf[2], buf[3]]) as usize;
        let extras_len = buf[4] as usize;
        if buf[5] != 0 {
            return Err(ProtoError::Malformed("nonzero data type"));
        }
        let vbucket_or_status = u16::from_be_bytes([buf[6], buf[7]]);
        let total_body = u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]) as usize;
        if extras_len + key_len > total_body {
            return Err(ProtoError::Malformed("body lengths inconsistent"));
        }
        let frame_len = BIN_HEADER_BYTES + total_body;
        if buf.len() < frame_len {
            return Ok(None);
        }
        let opaque = u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]]);
        let cas = u64::from_be_bytes([
            buf[16], buf[17], buf[18], buf[19], buf[20], buf[21], buf[22], buf[23],
        ]);
        let body = &buf[BIN_HEADER_BYTES..frame_len];
        Ok(Some((
            BinFrame {
                magic,
                opcode,
                vbucket_or_status,
                opaque,
                cas,
                extras: body[..extras_len].to_vec(),
                key: body[extras_len..extras_len + key_len].to_vec(),
                value: body[extras_len + key_len..].to_vec(),
            },
            frame_len,
        )))
    }
}

/// Builds the extras block for storage requests (`flags`, `exptime`).
pub fn store_extras(flags: u32, exptime: u32) -> Vec<u8> {
    let mut e = Vec::with_capacity(8);
    e.extend_from_slice(&flags.to_be_bytes());
    e.extend_from_slice(&exptime.to_be_bytes());
    e
}

/// Parses storage extras; `None` if malformed.
pub fn parse_store_extras(extras: &[u8]) -> Option<(u32, u32)> {
    if extras.len() != 8 {
        return None;
    }
    Some((
        u32::from_be_bytes(extras[..4].try_into().ok()?),
        u32::from_be_bytes(extras[4..8].try_into().ok()?),
    ))
}

/// Builds the extras block for incr/decr (`delta`, `initial`, `exptime`);
/// `exptime == 0xffff_ffff` means "do not create on miss".
pub fn arith_extras(delta: u64, initial: u64, exptime: u32) -> Vec<u8> {
    let mut e = Vec::with_capacity(20);
    e.extend_from_slice(&delta.to_be_bytes());
    e.extend_from_slice(&initial.to_be_bytes());
    e.extend_from_slice(&exptime.to_be_bytes());
    e
}

/// Parses incr/decr extras.
pub fn parse_arith_extras(extras: &[u8]) -> Option<(u64, u64, u32)> {
    if extras.len() != 20 {
        return None;
    }
    Some((
        u64::from_be_bytes(extras[..8].try_into().ok()?),
        u64::from_be_bytes(extras[8..16].try_into().ok()?),
        u32::from_be_bytes(extras[16..20].try_into().ok()?),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut f = BinFrame::request(BinOpcode::Set, 0xdead_beef);
        f.cas = 42;
        f.extras = store_extras(7, 3600);
        f.key = b"the-key".to_vec();
        f.value = vec![0u8, 1, 2, 255];
        let wire = f.encode();
        let (parsed, used) = BinFrame::parse(&wire).unwrap().unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(parsed, f);
    }

    #[test]
    fn incremental_parse() {
        let mut f = BinFrame::request(BinOpcode::Get, 1);
        f.key = b"k".to_vec();
        let wire = f.encode();
        for n in 0..wire.len() {
            assert_eq!(BinFrame::parse(&wire[..n]).unwrap(), None);
        }
        assert!(BinFrame::parse(&wire).unwrap().is_some());
    }

    #[test]
    fn bad_magic_and_opcode_rejected() {
        let mut f = BinFrame::request(BinOpcode::Get, 1).encode();
        f[0] = 0x55;
        assert!(BinFrame::parse(&f).is_err());
        let mut f = BinFrame::request(BinOpcode::Get, 1).encode();
        f[1] = 0xee;
        assert!(BinFrame::parse(&f).is_err());
    }

    #[test]
    fn inconsistent_lengths_rejected() {
        let mut f = BinFrame::request(BinOpcode::Get, 1);
        f.key = b"key".to_vec();
        let mut wire = f.encode();
        // Claim a key longer than the body.
        wire[2] = 0xff;
        wire[3] = 0xff;
        assert!(BinFrame::parse(&wire).is_err());
    }

    #[test]
    fn extras_round_trips() {
        assert_eq!(parse_store_extras(&store_extras(1, 2)), Some((1, 2)));
        assert_eq!(
            parse_arith_extras(&arith_extras(10, 20, 30)),
            Some((10, 20, 30))
        );
        assert_eq!(parse_store_extras(&[0; 7]), None);
        assert_eq!(parse_arith_extras(&[0; 19]), None);
    }

    #[test]
    fn status_round_trips() {
        for s in [
            BinStatus::Ok,
            BinStatus::KeyNotFound,
            BinStatus::KeyExists,
            BinStatus::TooLarge,
            BinStatus::NotStored,
            BinStatus::NonNumeric,
            BinStatus::OutOfMemory,
        ] {
            assert_eq!(BinStatus::from_u16(s as u16), Some(s));
        }
        assert_eq!(BinStatus::from_u16(0x7777), None);
    }

    #[test]
    fn quiet_opcodes() {
        assert!(BinOpcode::GetQ.is_quiet());
        assert!(BinOpcode::GetKQ.is_quiet());
        assert!(!BinOpcode::Get.is_quiet());
        assert!(!BinOpcode::Noop.is_quiet());
    }

    #[test]
    fn response_echoes_opaque_and_status() {
        let mut req = BinFrame::request(BinOpcode::Delete, 321);
        req.key = b"x".to_vec();
        let resp = BinFrame::response(&req, BinStatus::KeyNotFound);
        assert_eq!(resp.opaque, 321);
        assert_eq!(resp.status(), Some(BinStatus::KeyNotFound));
        assert_eq!(resp.opcode, BinOpcode::Delete);
        // Requests have no status.
        assert_eq!(req.status(), None);
    }
}
