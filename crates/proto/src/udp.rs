//! The memcached UDP frame header.
//!
//! Every UDP datagram carrying memcached traffic starts with eight bytes:
//! `request id`, `sequence number`, `total datagrams in this message`, and
//! a reserved word — enough for clients to match responses to requests and
//! reassemble multi-datagram responses. This is the protocol Facebook's
//! UDP memcached (paper §III) speaks.

use crate::ProtoError;

/// Size of the UDP frame header.
pub const UDP_FRAME_BYTES: usize = 8;

/// Largest payload memcached puts in one UDP datagram (fits a standard
/// Ethernet MTU after UDP/IP headers and the frame header).
pub const UDP_CHUNK_BYTES: usize = 1_400;

/// A parsed UDP frame header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UdpFrame {
    /// Client-chosen id echoed in every response datagram.
    pub request_id: u16,
    /// This datagram's index within the message.
    pub seq: u16,
    /// Number of datagrams in the message.
    pub total: u16,
}

impl UdpFrame {
    /// Encodes a header.
    pub fn encode(&self) -> [u8; UDP_FRAME_BYTES] {
        let mut b = [0u8; UDP_FRAME_BYTES];
        b[0..2].copy_from_slice(&self.request_id.to_be_bytes());
        b[2..4].copy_from_slice(&self.seq.to_be_bytes());
        b[4..6].copy_from_slice(&self.total.to_be_bytes());
        b
    }

    /// Decodes the header and returns it with the payload.
    pub fn decode(datagram: &[u8]) -> Result<(UdpFrame, &[u8]), ProtoError> {
        if datagram.len() < UDP_FRAME_BYTES {
            return Err(ProtoError::Malformed("short UDP frame"));
        }
        let frame = UdpFrame {
            request_id: u16::from_be_bytes([datagram[0], datagram[1]]),
            seq: u16::from_be_bytes([datagram[2], datagram[3]]),
            total: u16::from_be_bytes([datagram[4], datagram[5]]),
        };
        if frame.seq >= frame.total {
            return Err(ProtoError::Malformed("UDP seq beyond total"));
        }
        Ok((frame, &datagram[UDP_FRAME_BYTES..]))
    }
}

/// Splits `payload` into framed datagrams for `request_id`.
pub fn udp_fragment(request_id: u16, payload: &[u8]) -> Vec<Vec<u8>> {
    let chunks: Vec<&[u8]> = if payload.is_empty() {
        vec![&[][..]]
    } else {
        payload.chunks(UDP_CHUNK_BYTES).collect()
    };
    let total = chunks.len() as u16;
    chunks
        .iter()
        .enumerate()
        .map(|(seq, chunk)| {
            let mut d = Vec::with_capacity(UDP_FRAME_BYTES + chunk.len());
            d.extend_from_slice(
                &UdpFrame {
                    request_id,
                    seq: seq as u16,
                    total,
                }
                .encode(),
            );
            d.extend_from_slice(chunk);
            d
        })
        .collect()
}

/// Reassembles datagrams of one message; `None` until all fragments of
/// `request_id` are present. Fragments of other request ids are ignored.
pub fn udp_reassemble(request_id: u16, datagrams: &[(UdpFrame, Vec<u8>)]) -> Option<Vec<u8>> {
    let mine: Vec<&(UdpFrame, Vec<u8>)> = datagrams
        .iter()
        .filter(|(f, _)| f.request_id == request_id)
        .collect();
    let total = mine.first()?.0.total as usize;
    if mine.len() < total {
        return None;
    }
    let mut parts: Vec<Option<&[u8]>> = vec![None; total];
    for (f, data) in mine {
        *parts.get_mut(f.seq as usize)? = Some(data);
    }
    let mut out = Vec::new();
    for p in parts {
        out.extend_from_slice(p?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let f = UdpFrame {
            request_id: 0x1234,
            seq: 2,
            total: 5,
        };
        let mut d = f.encode().to_vec();
        d.extend_from_slice(b"payload");
        let (parsed, rest) = UdpFrame::decode(&d).unwrap();
        assert_eq!(parsed, f);
        assert_eq!(rest, b"payload");
    }

    #[test]
    fn malformed_headers_rejected() {
        assert!(UdpFrame::decode(&[1, 2, 3]).is_err());
        // seq >= total is nonsense.
        let f = UdpFrame {
            request_id: 1,
            seq: 3,
            total: 3,
        };
        assert!(UdpFrame::decode(&f.encode()).is_err());
    }

    #[test]
    fn fragment_reassemble_round_trip() {
        let payload: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        let dgrams = udp_fragment(9, &payload);
        assert_eq!(dgrams.len(), payload.len().div_ceil(UDP_CHUNK_BYTES));
        let parsed: Vec<(UdpFrame, Vec<u8>)> = dgrams
            .iter()
            .map(|d| {
                let (f, p) = UdpFrame::decode(d).unwrap();
                (f, p.to_vec())
            })
            .collect();
        assert_eq!(udp_reassemble(9, &parsed), Some(payload));
        // Wrong request id: nothing to assemble.
        assert_eq!(udp_reassemble(10, &parsed), None);
    }

    #[test]
    fn reassembly_waits_for_all_fragments() {
        let payload = vec![7u8; 3000];
        let dgrams = udp_fragment(1, &payload);
        let mut parsed: Vec<(UdpFrame, Vec<u8>)> = dgrams
            .iter()
            .map(|d| {
                let (f, p) = UdpFrame::decode(d).unwrap();
                (f, p.to_vec())
            })
            .collect();
        let last = parsed.pop().unwrap();
        assert_eq!(udp_reassemble(1, &parsed), None, "incomplete");
        parsed.insert(0, last); // out of order is fine
        assert_eq!(udp_reassemble(1, &parsed), Some(payload));
    }

    #[test]
    fn empty_payload_is_one_datagram() {
        let dgrams = udp_fragment(3, b"");
        assert_eq!(dgrams.len(), 1);
        let (f, rest) = UdpFrame::decode(&dgrams[0]).unwrap();
        assert_eq!((f.seq, f.total), (0, 1));
        assert!(rest.is_empty());
    }
}
