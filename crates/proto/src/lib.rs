//! # mcproto — the memcached ASCII protocol
//!
//! Streaming parser and serializer for the classic text protocol spoken
//! between libmemcached 0.45 and memcached 1.4.x — the wire format the
//! paper's *unmodified* baseline uses over every sockets transport. The
//! UCR design replaces this byte-stream framing with typed active-message
//! headers; the contrast between the two is the paper's thesis.
//!
//! Both directions are covered: commands ([`Command`], parsed by servers,
//! encoded by clients) and responses ([`Response`], encoded by servers,
//! parsed by clients). Parsing is incremental: feed a growing buffer,
//! get back `Ok(None)` until a complete frame (including any data block)
//! is present.

#![warn(missing_docs)]

mod binary;
mod command;
mod response;
mod udp;

pub use binary::{
    arith_extras, parse_arith_extras, parse_store_extras, store_extras, BinFrame, BinOpcode,
    BinStatus, BIN_HEADER_BYTES, MAGIC_REQUEST, MAGIC_RESPONSE,
};
pub use command::{encode_command, parse_command, Command, StoreVerb};
pub use response::{encode_response, parse_response, GetValue, Response};
pub use udp::{udp_fragment, udp_reassemble, UdpFrame, UDP_CHUNK_BYTES, UDP_FRAME_BYTES};

/// Protocol-level errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// Input is not a recognized command/response.
    Malformed(&'static str),
    /// A numeric field failed to parse.
    BadNumber,
    /// Line exceeded the protocol's bounds (keys > 250 bytes etc.).
    TooLong,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Malformed(what) => write!(f, "malformed protocol input: {what}"),
            ProtoError::BadNumber => write!(f, "bad number"),
            ProtoError::TooLong => write!(f, "line too long"),
        }
    }
}

impl std::error::Error for ProtoError {}

pub(crate) const CRLF: &[u8] = b"\r\n";

/// Maximum command-line length accepted (memcached uses 1024 + key).
pub(crate) const MAX_LINE: usize = 2048;

/// Finds the first CRLF; returns the line (exclusive) and bytes consumed
/// (inclusive of CRLF).
pub(crate) fn take_line(buf: &[u8]) -> Result<Option<(&[u8], usize)>, ProtoError> {
    match buf.windows(2).position(|w| w == CRLF) {
        Some(pos) => Ok(Some((&buf[..pos], pos + 2))),
        None if buf.len() > MAX_LINE => Err(ProtoError::TooLong),
        None => Ok(None),
    }
}
