//! Response-side framing: encode (server) and parse (client).

use crate::{take_line, ProtoError, CRLF};

/// One `VALUE` stanza of a get/gets response.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GetValue {
    /// Item key.
    pub key: Vec<u8>,
    /// Opaque client flags.
    pub flags: u32,
    /// The value bytes.
    pub data: Vec<u8>,
    /// CAS token (present only for `gets`).
    pub cas: Option<u64>,
}

/// A server response.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Response {
    /// `STORED`.
    Stored,
    /// `NOT_STORED`.
    NotStored,
    /// `EXISTS` (CAS mismatch).
    Exists,
    /// `NOT_FOUND`.
    NotFound,
    /// `DELETED`.
    Deleted,
    /// `TOUCHED`.
    Touched,
    /// `VALUE ... END` block (possibly empty → bare `END`).
    Values(Vec<GetValue>),
    /// Numeric reply from incr/decr.
    Number(u64),
    /// `STAT name value` block terminated by `END`.
    Stats(Vec<(String, String)>),
    /// `OK`.
    Ok,
    /// `VERSION <s>`.
    Version(String),
    /// `ERROR` (unknown command).
    Error,
    /// `CLIENT_ERROR <msg>`.
    ClientError(String),
    /// `SERVER_ERROR <msg>`.
    ServerError(String),
}

/// Encodes a response to the wire (server side).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Stored => out.extend_from_slice(b"STORED\r\n"),
        Response::NotStored => out.extend_from_slice(b"NOT_STORED\r\n"),
        Response::Exists => out.extend_from_slice(b"EXISTS\r\n"),
        Response::NotFound => out.extend_from_slice(b"NOT_FOUND\r\n"),
        Response::Deleted => out.extend_from_slice(b"DELETED\r\n"),
        Response::Touched => out.extend_from_slice(b"TOUCHED\r\n"),
        Response::Values(values) => {
            for v in values {
                out.extend_from_slice(b"VALUE ");
                out.extend_from_slice(&v.key);
                match v.cas {
                    Some(cas) => out.extend_from_slice(
                        format!(" {} {} {}", v.flags, v.data.len(), cas).as_bytes(),
                    ),
                    None => {
                        out.extend_from_slice(format!(" {} {}", v.flags, v.data.len()).as_bytes())
                    }
                }
                out.extend_from_slice(CRLF);
                out.extend_from_slice(&v.data);
                out.extend_from_slice(CRLF);
            }
            out.extend_from_slice(b"END\r\n");
        }
        Response::Number(n) => out.extend_from_slice(format!("{n}\r\n").as_bytes()),
        Response::Stats(stats) => {
            for (k, v) in stats {
                out.extend_from_slice(format!("STAT {k} {v}\r\n").as_bytes());
            }
            out.extend_from_slice(b"END\r\n");
        }
        Response::Ok => out.extend_from_slice(b"OK\r\n"),
        Response::Version(v) => out.extend_from_slice(format!("VERSION {v}\r\n").as_bytes()),
        Response::Error => out.extend_from_slice(b"ERROR\r\n"),
        Response::ClientError(m) => {
            out.extend_from_slice(format!("CLIENT_ERROR {m}\r\n").as_bytes())
        }
        Response::ServerError(m) => {
            out.extend_from_slice(format!("SERVER_ERROR {m}\r\n").as_bytes())
        }
    }
    out
}

/// Incremental response parse (client side). `Ok(None)` = need more bytes;
/// on success returns the response and bytes consumed.
pub fn parse_response(buf: &[u8]) -> Result<Option<(Response, usize)>, ProtoError> {
    let Some((line, line_len)) = take_line(buf)? else {
        return Ok(None);
    };
    let toks: Vec<&[u8]> = line
        .split(|&b| b == b' ')
        .filter(|t| !t.is_empty())
        .collect();
    if toks.is_empty() {
        return Err(ProtoError::Malformed("empty response line"));
    }
    match toks[0] {
        b"STORED" => Ok(Some((Response::Stored, line_len))),
        b"NOT_STORED" => Ok(Some((Response::NotStored, line_len))),
        b"EXISTS" => Ok(Some((Response::Exists, line_len))),
        b"NOT_FOUND" => Ok(Some((Response::NotFound, line_len))),
        b"DELETED" => Ok(Some((Response::Deleted, line_len))),
        b"TOUCHED" => Ok(Some((Response::Touched, line_len))),
        b"OK" => Ok(Some((Response::Ok, line_len))),
        b"ERROR" => Ok(Some((Response::Error, line_len))),
        b"END" => Ok(Some((Response::Values(Vec::new()), line_len))),
        b"VERSION" => {
            let v = String::from_utf8_lossy(&line[8.min(line.len())..]).into_owned();
            Ok(Some((Response::Version(v), line_len)))
        }
        b"CLIENT_ERROR" => {
            let m = String::from_utf8_lossy(&line[13.min(line.len())..]).into_owned();
            Ok(Some((Response::ClientError(m), line_len)))
        }
        b"SERVER_ERROR" => {
            let m = String::from_utf8_lossy(&line[13.min(line.len())..]).into_owned();
            Ok(Some((Response::ServerError(m), line_len)))
        }
        b"VALUE" => parse_values(buf),
        b"STAT" => parse_stats(buf),
        tok => {
            // Bare number from incr/decr.
            if tok.iter().all(|b| b.is_ascii_digit()) && toks.len() == 1 {
                let n: u64 = std::str::from_utf8(tok)
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .ok_or(ProtoError::BadNumber)?;
                Ok(Some((Response::Number(n), line_len)))
            } else {
                Err(ProtoError::Malformed("unknown response"))
            }
        }
    }
}

fn parse_values(buf: &[u8]) -> Result<Option<(Response, usize)>, ProtoError> {
    let mut pos = 0usize;
    let mut values = Vec::new();
    loop {
        let Some((line, line_len)) = take_line(&buf[pos..])? else {
            return Ok(None);
        };
        if line == b"END" {
            return Ok(Some((Response::Values(values), pos + line_len)));
        }
        let toks: Vec<&[u8]> = line
            .split(|&b| b == b' ')
            .filter(|t| !t.is_empty())
            .collect();
        if toks.len() < 4 || toks[0] != b"VALUE" {
            return Err(ProtoError::Malformed("expected VALUE or END"));
        }
        let key = toks[1].to_vec();
        let flags: u32 = parse_num(toks[2])?;
        let bytes: usize = parse_num(toks[3])?;
        let cas = match toks.get(4) {
            Some(t) => Some(parse_num::<u64>(t)?),
            None => None,
        };
        let data_start = pos + line_len;
        let data_end = data_start + bytes;
        if buf.len() < data_end + CRLF.len() {
            return Ok(None);
        }
        if &buf[data_end..data_end + 2] != CRLF {
            return Err(ProtoError::Malformed("value data not CRLF-terminated"));
        }
        values.push(GetValue {
            key,
            flags,
            data: buf[data_start..data_end].to_vec(),
            cas,
        });
        pos = data_end + 2;
    }
}

fn parse_stats(buf: &[u8]) -> Result<Option<(Response, usize)>, ProtoError> {
    let mut pos = 0usize;
    let mut stats = Vec::new();
    loop {
        let Some((line, line_len)) = take_line(&buf[pos..])? else {
            return Ok(None);
        };
        pos += line_len;
        if line == b"END" {
            return Ok(Some((Response::Stats(stats), pos)));
        }
        let text = std::str::from_utf8(line).map_err(|_| ProtoError::Malformed("stat utf8"))?;
        let mut parts = text.splitn(3, ' ');
        let (stat, name, value) = (parts.next(), parts.next(), parts.next());
        if stat != Some("STAT") {
            return Err(ProtoError::Malformed("expected STAT or END"));
        }
        stats.push((
            name.unwrap_or_default().to_string(),
            value.unwrap_or_default().to_string(),
        ));
    }
}

fn parse_num<T: std::str::FromStr>(tok: &[u8]) -> Result<T, ProtoError> {
    std::str::from_utf8(tok)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or(ProtoError::BadNumber)
}
