//! Request-side framing: parse (server) and encode (client).

use crate::{take_line, ProtoError, CRLF};

/// The five storage verbs sharing the `<verb> <key> <flags> <exptime>
/// <bytes> [noreply]\r\n<data>\r\n` shape, plus `cas` with its token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StoreVerb {
    /// Unconditional store.
    Set,
    /// Store if absent.
    Add,
    /// Store if present.
    Replace,
    /// Concatenate after the existing value.
    Append,
    /// Concatenate before the existing value.
    Prepend,
}

impl StoreVerb {
    fn name(self) -> &'static str {
        match self {
            StoreVerb::Set => "set",
            StoreVerb::Add => "add",
            StoreVerb::Replace => "replace",
            StoreVerb::Append => "append",
            StoreVerb::Prepend => "prepend",
        }
    }
}

/// A parsed client command.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Command {
    /// `set`/`add`/`replace`/`append`/`prepend`.
    Store {
        /// Which verb.
        verb: StoreVerb,
        /// Item key.
        key: Vec<u8>,
        /// Opaque client flags.
        flags: u32,
        /// Expiration (0 / relative / absolute, per memcached rules).
        exptime: u32,
        /// The data block.
        data: Vec<u8>,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `cas <key> <flags> <exptime> <bytes> <cas> [noreply]`.
    Cas {
        /// Item key.
        key: Vec<u8>,
        /// Opaque client flags.
        flags: u32,
        /// Expiration.
        exptime: u32,
        /// Expected CAS token.
        cas: u64,
        /// The data block.
        data: Vec<u8>,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `get <key>*` — multi-key fetch.
    Get {
        /// Keys to fetch.
        keys: Vec<Vec<u8>>,
    },
    /// `gets <key>*` — fetch with CAS tokens.
    Gets {
        /// Keys to fetch.
        keys: Vec<Vec<u8>>,
    },
    /// `delete <key> [noreply]`.
    Delete {
        /// Key to remove.
        key: Vec<u8>,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `incr <key> <delta> [noreply]`.
    Incr {
        /// Key holding a decimal value.
        key: Vec<u8>,
        /// Amount to add.
        delta: u64,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `decr <key> <delta> [noreply]`.
    Decr {
        /// Key holding a decimal value.
        key: Vec<u8>,
        /// Amount to subtract (clamped at zero).
        delta: u64,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `touch <key> <exptime> [noreply]`.
    Touch {
        /// Key to refresh.
        key: Vec<u8>,
        /// New expiration.
        exptime: u32,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `flush_all [delay] [noreply]`.
    FlushAll {
        /// Optional delay in seconds before the flush takes effect.
        delay: u32,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `stats [slabs|items|...]`.
    Stats {
        /// Optional sub-report (memcached's `stats slabs`, `stats items`).
        arg: Option<Vec<u8>>,
    },
    /// `version`.
    Version,
    /// `quit`.
    Quit,
}

fn split_tokens(line: &[u8]) -> Vec<&[u8]> {
    line.split(|&b| b == b' ')
        .filter(|t| !t.is_empty())
        .collect()
}

fn num<T: std::str::FromStr>(tok: &[u8]) -> Result<T, ProtoError> {
    std::str::from_utf8(tok)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or(ProtoError::BadNumber)
}

fn check_key(key: &[u8]) -> Result<(), ProtoError> {
    if key.is_empty() || key.len() > 250 {
        return Err(ProtoError::TooLong);
    }
    if key.iter().any(|&b| b <= b' ' || b == 0x7f) {
        return Err(ProtoError::Malformed("control characters in key"));
    }
    Ok(())
}

/// Incremental parse: `Ok(None)` means more bytes are needed; on success
/// returns the command and the number of bytes consumed.
pub fn parse_command(buf: &[u8]) -> Result<Option<(Command, usize)>, ProtoError> {
    let Some((line, line_len)) = take_line(buf)? else {
        return Ok(None);
    };
    let toks = split_tokens(line);
    if toks.is_empty() {
        return Err(ProtoError::Malformed("empty command line"));
    }
    let verb = toks[0];
    let store_verb = match verb {
        b"set" => Some(StoreVerb::Set),
        b"add" => Some(StoreVerb::Add),
        b"replace" => Some(StoreVerb::Replace),
        b"append" => Some(StoreVerb::Append),
        b"prepend" => Some(StoreVerb::Prepend),
        _ => None,
    };

    if let Some(sv) = store_verb {
        if toks.len() < 5 {
            return Err(ProtoError::Malformed("storage command needs 5 fields"));
        }
        let key = toks[1].to_vec();
        check_key(&key)?;
        let flags: u32 = num(toks[2])?;
        let exptime: u32 = num(toks[3])?;
        let bytes: usize = num(toks[4])?;
        let noreply = toks.get(5) == Some(&&b"noreply"[..]);
        let total = line_len + bytes + CRLF.len();
        if buf.len() < total {
            return Ok(None); // waiting for the data block
        }
        let data = buf[line_len..line_len + bytes].to_vec();
        if &buf[line_len + bytes..total] != CRLF {
            return Err(ProtoError::Malformed("data block not CRLF-terminated"));
        }
        return Ok(Some((
            Command::Store {
                verb: sv,
                key,
                flags,
                exptime,
                data,
                noreply,
            },
            total,
        )));
    }

    match verb {
        b"cas" => {
            if toks.len() < 6 {
                return Err(ProtoError::Malformed("cas needs 6 fields"));
            }
            let key = toks[1].to_vec();
            check_key(&key)?;
            let flags: u32 = num(toks[2])?;
            let exptime: u32 = num(toks[3])?;
            let bytes: usize = num(toks[4])?;
            let cas: u64 = num(toks[5])?;
            let noreply = toks.get(6) == Some(&&b"noreply"[..]);
            let total = line_len + bytes + CRLF.len();
            if buf.len() < total {
                return Ok(None);
            }
            let data = buf[line_len..line_len + bytes].to_vec();
            if &buf[line_len + bytes..total] != CRLF {
                return Err(ProtoError::Malformed("data block not CRLF-terminated"));
            }
            Ok(Some((
                Command::Cas {
                    key,
                    flags,
                    exptime,
                    cas,
                    data,
                    noreply,
                },
                total,
            )))
        }
        b"get" | b"gets" => {
            if toks.len() < 2 {
                return Err(ProtoError::Malformed("get needs at least one key"));
            }
            let keys: Vec<Vec<u8>> = toks[1..].iter().map(|t| t.to_vec()).collect();
            for k in &keys {
                check_key(k)?;
            }
            let cmd = if verb == b"get" {
                Command::Get { keys }
            } else {
                Command::Gets { keys }
            };
            Ok(Some((cmd, line_len)))
        }
        b"delete" => {
            if toks.len() < 2 {
                return Err(ProtoError::Malformed("delete needs a key"));
            }
            let key = toks[1].to_vec();
            check_key(&key)?;
            let noreply = toks.get(2) == Some(&&b"noreply"[..]);
            Ok(Some((Command::Delete { key, noreply }, line_len)))
        }
        b"incr" | b"decr" => {
            if toks.len() < 3 {
                return Err(ProtoError::Malformed("incr/decr needs key and delta"));
            }
            let key = toks[1].to_vec();
            check_key(&key)?;
            let delta: u64 = num(toks[2])?;
            let noreply = toks.get(3) == Some(&&b"noreply"[..]);
            let cmd = if verb == b"incr" {
                Command::Incr {
                    key,
                    delta,
                    noreply,
                }
            } else {
                Command::Decr {
                    key,
                    delta,
                    noreply,
                }
            };
            Ok(Some((cmd, line_len)))
        }
        b"touch" => {
            if toks.len() < 3 {
                return Err(ProtoError::Malformed("touch needs key and exptime"));
            }
            let key = toks[1].to_vec();
            check_key(&key)?;
            let exptime: u32 = num(toks[2])?;
            let noreply = toks.get(3) == Some(&&b"noreply"[..]);
            Ok(Some((
                Command::Touch {
                    key,
                    exptime,
                    noreply,
                },
                line_len,
            )))
        }
        b"flush_all" => {
            let mut delay = 0u32;
            let mut noreply = false;
            for t in &toks[1..] {
                if *t == b"noreply" {
                    noreply = true;
                } else {
                    delay = num(t)?;
                }
            }
            Ok(Some((Command::FlushAll { delay, noreply }, line_len)))
        }
        b"stats" => {
            let arg = toks.get(1).map(|t| t.to_vec());
            Ok(Some((Command::Stats { arg }, line_len)))
        }
        b"version" => Ok(Some((Command::Version, line_len))),
        b"quit" => Ok(Some((Command::Quit, line_len))),
        _ => Err(ProtoError::Malformed("unknown command")),
    }
}

/// Encodes a command to the wire (client side).
pub fn encode_command(cmd: &Command) -> Vec<u8> {
    let mut out = Vec::new();
    match cmd {
        Command::Store {
            verb,
            key,
            flags,
            exptime,
            data,
            noreply,
        } => {
            out.extend_from_slice(verb.name().as_bytes());
            out.push(b' ');
            out.extend_from_slice(key);
            out.extend_from_slice(
                format!(
                    " {} {} {}{}",
                    flags,
                    exptime,
                    data.len(),
                    reply_suffix(*noreply)
                )
                .as_bytes(),
            );
            out.extend_from_slice(CRLF);
            out.extend_from_slice(data);
            out.extend_from_slice(CRLF);
        }
        Command::Cas {
            key,
            flags,
            exptime,
            cas,
            data,
            noreply,
        } => {
            out.extend_from_slice(b"cas ");
            out.extend_from_slice(key);
            out.extend_from_slice(
                format!(
                    " {} {} {} {}{}",
                    flags,
                    exptime,
                    data.len(),
                    cas,
                    reply_suffix(*noreply)
                )
                .as_bytes(),
            );
            out.extend_from_slice(CRLF);
            out.extend_from_slice(data);
            out.extend_from_slice(CRLF);
        }
        Command::Get { keys } | Command::Gets { keys } => {
            out.extend_from_slice(if matches!(cmd, Command::Get { .. }) {
                b"get"
            } else {
                b"gets" as &[u8]
            });
            for k in keys {
                out.push(b' ');
                out.extend_from_slice(k);
            }
            out.extend_from_slice(CRLF);
        }
        Command::Delete { key, noreply } => {
            out.extend_from_slice(b"delete ");
            out.extend_from_slice(key);
            out.extend_from_slice(reply_suffix(*noreply).as_bytes());
            out.extend_from_slice(CRLF);
        }
        Command::Incr {
            key,
            delta,
            noreply,
        }
        | Command::Decr {
            key,
            delta,
            noreply,
        } => {
            out.extend_from_slice(if matches!(cmd, Command::Incr { .. }) {
                b"incr "
            } else {
                b"decr " as &[u8]
            });
            out.extend_from_slice(key);
            out.extend_from_slice(format!(" {}{}", delta, reply_suffix(*noreply)).as_bytes());
            out.extend_from_slice(CRLF);
        }
        Command::Touch {
            key,
            exptime,
            noreply,
        } => {
            out.extend_from_slice(b"touch ");
            out.extend_from_slice(key);
            out.extend_from_slice(format!(" {}{}", exptime, reply_suffix(*noreply)).as_bytes());
            out.extend_from_slice(CRLF);
        }
        Command::FlushAll { delay, noreply } => {
            out.extend_from_slice(b"flush_all");
            if *delay > 0 {
                out.extend_from_slice(format!(" {delay}").as_bytes());
            }
            out.extend_from_slice(reply_suffix(*noreply).as_bytes());
            out.extend_from_slice(CRLF);
        }
        Command::Stats { arg } => {
            out.extend_from_slice(b"stats");
            if let Some(a) = arg {
                out.push(b' ');
                out.extend_from_slice(a);
            }
            out.extend_from_slice(CRLF);
        }
        Command::Version => out.extend_from_slice(b"version\r\n"),
        Command::Quit => out.extend_from_slice(b"quit\r\n"),
    }
    out
}

fn reply_suffix(noreply: bool) -> &'static str {
    if noreply {
        " noreply"
    } else {
        ""
    }
}
