//! Protocol tests: framing in both directions, incremental parsing, and
//! encode∘parse round-trip properties.

use mcproto::{
    encode_command, encode_response, parse_command, parse_response, Command, GetValue, ProtoError,
    Response, StoreVerb,
};

#[test]
fn parse_set_with_data_block() {
    let wire = b"set foo 7 60 5\r\nhello\r\n";
    let (cmd, used) = parse_command(wire).unwrap().unwrap();
    assert_eq!(used, wire.len());
    assert_eq!(
        cmd,
        Command::Store {
            verb: StoreVerb::Set,
            key: b"foo".to_vec(),
            flags: 7,
            exptime: 60,
            data: b"hello".to_vec(),
            noreply: false,
        }
    );
}

#[test]
fn incremental_parse_waits_for_data() {
    let wire = b"set foo 0 0 5\r\nhello\r\n";
    // Feed byte by byte: must return None until complete, then succeed.
    for n in 0..wire.len() {
        assert_eq!(parse_command(&wire[..n]).unwrap(), None, "prefix {n}");
    }
    assert!(parse_command(wire).unwrap().is_some());
}

#[test]
fn parse_consumes_exactly_one_command() {
    let wire = b"get a\r\nget b\r\n";
    let (cmd, used) = parse_command(wire).unwrap().unwrap();
    assert_eq!(
        cmd,
        Command::Get {
            keys: vec![b"a".to_vec()]
        }
    );
    let (cmd2, _) = parse_command(&wire[used..]).unwrap().unwrap();
    assert_eq!(
        cmd2,
        Command::Get {
            keys: vec![b"b".to_vec()]
        }
    );
}

#[test]
fn multiget_keys() {
    let (cmd, _) = parse_command(b"gets k1 k2 k3\r\n").unwrap().unwrap();
    assert_eq!(
        cmd,
        Command::Gets {
            keys: vec![b"k1".to_vec(), b"k2".to_vec(), b"k3".to_vec()]
        }
    );
}

#[test]
fn noreply_flag() {
    let (cmd, _) = parse_command(b"delete k noreply\r\n").unwrap().unwrap();
    assert_eq!(
        cmd,
        Command::Delete {
            key: b"k".to_vec(),
            noreply: true
        }
    );
}

#[test]
fn binary_safe_values() {
    // Data blocks may contain CRLF; only the length field delimits them.
    let mut wire = b"set bin 0 0 6\r\n".to_vec();
    wire.extend_from_slice(b"a\r\nb\0c");
    wire.extend_from_slice(b"\r\n");
    let (cmd, used) = parse_command(&wire).unwrap().unwrap();
    assert_eq!(used, wire.len());
    match cmd {
        Command::Store { data, .. } => assert_eq!(data, b"a\r\nb\0c"),
        other => panic!("wrong command {other:?}"),
    }
}

#[test]
fn malformed_commands_error() {
    assert!(matches!(
        parse_command(b"bogus\r\n"),
        Err(ProtoError::Malformed(_))
    ));
    assert!(matches!(
        parse_command(b"set k x 0 5\r\nhello\r\n"),
        Err(ProtoError::BadNumber)
    ));
    assert!(matches!(
        parse_command(b"set k 0 0 3\r\nhelloXX"),
        Err(ProtoError::Malformed(_))
    ));
    // Key with control characters.
    assert!(parse_command(b"get a\x01b\r\n").is_err());
    // Key too long.
    let mut long = b"get ".to_vec();
    long.extend(vec![b'k'; 251]);
    long.extend_from_slice(b"\r\n");
    assert!(matches!(parse_command(&long), Err(ProtoError::TooLong)));
}

#[test]
fn response_values_round_trip() {
    let resp = Response::Values(vec![
        GetValue {
            key: b"a".to_vec(),
            flags: 1,
            data: b"xyz".to_vec(),
            cas: None,
        },
        GetValue {
            key: b"b".to_vec(),
            flags: 0,
            data: b"\r\nEND\r\n".to_vec(), // adversarial payload
            cas: Some(42),
        },
    ]);
    let wire = encode_response(&resp);
    let (parsed, used) = parse_response(&wire).unwrap().unwrap();
    assert_eq!(used, wire.len());
    assert_eq!(parsed, resp);
}

#[test]
fn empty_get_is_bare_end() {
    let wire = encode_response(&Response::Values(Vec::new()));
    assert_eq!(wire, b"END\r\n");
    let (parsed, _) = parse_response(&wire).unwrap().unwrap();
    assert_eq!(parsed, Response::Values(Vec::new()));
}

#[test]
fn stats_with_arg_parses() {
    let (cmd, _) = parse_command(b"stats slabs\r\n").unwrap().unwrap();
    assert_eq!(
        cmd,
        Command::Stats {
            arg: Some(b"slabs".to_vec())
        }
    );
    let (cmd, _) = parse_command(b"stats\r\n").unwrap().unwrap();
    assert_eq!(cmd, Command::Stats { arg: None });
}

#[test]
fn stats_round_trip() {
    let resp = Response::Stats(vec![
        ("get_hits".into(), "10".into()),
        ("version".into(), "1.4.5-rmc".into()),
    ]);
    let wire = encode_response(&resp);
    let (parsed, _) = parse_response(&wire).unwrap().unwrap();
    assert_eq!(parsed, resp);
}

#[test]
fn numeric_reply() {
    let (r, _) = parse_response(b"42\r\n").unwrap().unwrap();
    assert_eq!(r, Response::Number(42));
}

#[test]
fn incremental_response_parse() {
    let wire = encode_response(&Response::Values(vec![GetValue {
        key: b"k".to_vec(),
        flags: 0,
        data: vec![9u8; 100],
        cas: None,
    }]));
    for n in [0, 5, 20, wire.len() - 1] {
        assert_eq!(parse_response(&wire[..n]).unwrap(), None);
    }
    assert!(parse_response(&wire).unwrap().is_some());
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(0x21u8..0x7f, 1..40)
    }

    fn data_strategy() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(any::<u8>(), 0..200)
    }

    fn command_strategy() -> impl Strategy<Value = Command> {
        let verb = prop_oneof![
            Just(StoreVerb::Set),
            Just(StoreVerb::Add),
            Just(StoreVerb::Replace),
            Just(StoreVerb::Append),
            Just(StoreVerb::Prepend),
        ];
        prop_oneof![
            (
                verb,
                key_strategy(),
                any::<u32>(),
                any::<u32>(),
                data_strategy(),
                any::<bool>()
            )
                .prop_map(|(verb, key, flags, exptime, data, noreply)| {
                    Command::Store {
                        verb,
                        key,
                        flags,
                        exptime,
                        data,
                        noreply,
                    }
                }),
            (
                key_strategy(),
                any::<u32>(),
                any::<u32>(),
                any::<u64>(),
                data_strategy(),
                any::<bool>()
            )
                .prop_map(|(key, flags, exptime, cas, data, noreply)| Command::Cas {
                    key,
                    flags,
                    exptime,
                    cas,
                    data,
                    noreply
                }),
            proptest::collection::vec(key_strategy(), 1..5).prop_map(|keys| Command::Get { keys }),
            proptest::collection::vec(key_strategy(), 1..5).prop_map(|keys| Command::Gets { keys }),
            (key_strategy(), any::<bool>())
                .prop_map(|(key, noreply)| Command::Delete { key, noreply }),
            (key_strategy(), any::<u64>(), any::<bool>()).prop_map(|(key, delta, noreply)| {
                Command::Incr {
                    key,
                    delta,
                    noreply,
                }
            }),
            (key_strategy(), any::<u64>(), any::<bool>()).prop_map(|(key, delta, noreply)| {
                Command::Decr {
                    key,
                    delta,
                    noreply,
                }
            }),
            (key_strategy(), any::<u32>(), any::<bool>()).prop_map(|(key, exptime, noreply)| {
                Command::Touch {
                    key,
                    exptime,
                    noreply,
                }
            }),
            (any::<u32>(), any::<bool>())
                .prop_map(|(delay, noreply)| Command::FlushAll { delay, noreply }),
            proptest::option::of(proptest::collection::vec(0x21u8..0x7f, 1..10))
                .prop_map(|arg| Command::Stats { arg }),
            Just(Command::Version),
            Just(Command::Quit),
        ]
    }

    fn response_strategy() -> impl Strategy<Value = Response> {
        let value = (
            key_strategy(),
            any::<u32>(),
            data_strategy(),
            proptest::option::of(any::<u64>()),
        )
            .prop_map(|(key, flags, data, cas)| GetValue {
                key,
                flags,
                data,
                cas,
            });
        prop_oneof![
            Just(Response::Stored),
            Just(Response::NotStored),
            Just(Response::Exists),
            Just(Response::NotFound),
            Just(Response::Deleted),
            Just(Response::Touched),
            Just(Response::Ok),
            Just(Response::Error),
            proptest::collection::vec(value, 0..4).prop_map(Response::Values),
            any::<u64>().prop_map(Response::Number),
        ]
    }

    proptest! {
        /// Client-encoded commands parse back identically on the server.
        #[test]
        fn command_encode_parse_round_trip(cmd in command_strategy()) {
            let wire = encode_command(&cmd);
            let (parsed, used) = parse_command(&wire).unwrap().expect("complete");
            prop_assert_eq!(used, wire.len());
            prop_assert_eq!(parsed, cmd);
        }

        /// Server-encoded responses parse back identically on the client.
        #[test]
        fn response_encode_parse_round_trip(resp in response_strategy()) {
            let wire = encode_response(&resp);
            let (parsed, used) = parse_response(&wire).unwrap().expect("complete");
            prop_assert_eq!(used, wire.len());
            prop_assert_eq!(parsed, resp);
        }

        /// Truncating a valid frame anywhere yields `None` or a hard error,
        /// never a wrong successful parse.
        #[test]
        fn truncation_is_detected(cmd in command_strategy(), cut in 0usize..64) {
            let wire = encode_command(&cmd);
            if cut < wire.len() {
                if let Ok(Some((parsed, used))) = parse_command(&wire[..wire.len()-1-cut.min(wire.len()-1)]) {
                    // A shorter prefix may legally contain a complete
                    // different... no: prefixes of a single command must
                    // not parse as that command with full length.
                    prop_assert!(used < wire.len());
                    let _ = parsed;
                }
            }
        }
    }
}
