//! Acceptance tests for the virtual-time profiler: profiling costs zero
//! virtual time (bare vs traced vs profiled end clocks are bit-identical),
//! every completed request decomposes exactly into critical-path stages
//! plus an explicit residual, the folded collapsed-stack export round-trips
//! through its parser, the `stats profile` verb reports on both client
//! families, and tail exemplars carry their op's critical-path breakdown.

use rdma_memcached::rmc::{
    McClient, McClientConfig, McServer, McServerConfig, ObservatoryConfig, StoreModel, Transport,
    World,
};
use rdma_memcached::simnet::trace_export::{folded_text, parse_folded};
use rdma_memcached::simnet::{
    EventRecorder, ExemplarConfig, NodeId, PathStage, Profiler, ProfilerConfig, Stack,
};

fn world_pair(seed: u64, transport: Transport, cfg: McServerConfig) -> (World, McServer, McClient) {
    let world = World::cluster_b(seed, 4);
    let server = McServer::start(&world, NodeId(0), cfg);
    let client = McClient::new(
        &world,
        NodeId(1),
        McClientConfig::single(transport, NodeId(0)),
    );
    (world, server, client)
}

/// Sequential set + `gets` reads; returns the end-of-run virtual clock.
fn run_gets(world: &World, client: McClient, gets: usize) -> u64 {
    let sim = world.sim().clone();
    let sim2 = sim.clone();
    sim.block_on(async move {
        client.set(b"k", &vec![0x5au8; 512], 0, 0).await.unwrap();
        for _ in 0..gets {
            client.get(b"k").await.unwrap().unwrap();
        }
        sim2.now().as_nanos()
    })
}

#[test]
fn profiling_adds_no_virtual_time() {
    // Bare, traced (recorder sink), and profiled (detail markers ON) runs
    // of the same workload must end at the same virtual nanosecond: every
    // profiler hook is host-side bookkeeping.
    let run = |mode: u8| {
        let (world, _server, client) = world_pair(71, Transport::Ucr, McServerConfig::default());
        match mode {
            1 => {
                world.cluster.tracer().add_sink(EventRecorder::new());
            }
            2 => {
                let _ = Profiler::attach(world.cluster.tracer(), ProfilerConfig::default());
            }
            _ => {}
        }
        run_gets(&world, client, 20)
    };
    let bare = run(0);
    let traced = run(1);
    let profiled = run(2);
    assert_eq!(bare, traced, "tracing must not move the virtual clock");
    assert_eq!(
        bare, profiled,
        "profiling (detail markers on) must not move the virtual clock"
    );
}

#[test]
fn ucr_paths_decompose_exactly_under_global_lock() {
    let (world, _server, client) = world_pair(
        72,
        Transport::Ucr,
        McServerConfig {
            workers: 2,
            store_model: StoreModel::GlobalLock,
            ..McServerConfig::default()
        },
    );
    let profiler = Profiler::attach(
        world.cluster.tracer(),
        ProfilerConfig {
            keep_paths: true,
            ..ProfilerConfig::default()
        },
    );
    let sim = world.sim().clone();
    sim.block_on(async move {
        client.set(b"k", &[7u8; 256], 0, 0).await.unwrap();
        for _ in 0..30 {
            client.get(b"k").await.unwrap().unwrap();
        }

        assert_eq!(profiler.completed(), 31, "set + 30 gets all retired");
        let audit = profiler.audit();
        assert_eq!(audit.inexact_ops, 0, "stage sum + residual == e2e, always");
        for cp in profiler.paths() {
            assert!(cp.is_exact(), "path {cp:?} violates the exactness identity");
        }
        // Request ids are on the UCR wire, so every stage correlates
        // directly: wire, service, and lock-hold time are all attributed.
        assert!(profiler.stage_total(PathStage::RequestWire).as_nanos() > 0);
        assert!(profiler.stage_total(PathStage::ResponseWire).as_nanos() > 0);
        assert!(profiler.stage_total(PathStage::Service).as_nanos() > 0);
        assert!(
            profiler.stage_total(PathStage::LockHold).as_nanos() > 0,
            "GlobalLock charges every op a lock hold"
        );
        assert_eq!(profiler.unmatched_events(), 0, "ids correlate end to end");

        // The `stats profile` verb surfaces the same audit through the
        // protocol.
        let stats = client.stats_report("profile").await.unwrap();
        let lookup = |key: &str| {
            stats
                .iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("missing {key}"))
                .1
                .clone()
        };
        // The stats op itself is mid-flight while the report renders.
        assert_eq!(lookup("profile.ops"), "31");
        assert_eq!(lookup("profile.inexact_ops"), "0");
        assert!(lookup("profile.stage.lock_hold").starts_with("share="));
        assert!(lookup("profile.signature.0").contains('x'));
    });
}

#[test]
fn sockets_paths_decompose_exactly_via_single_op_fallback() {
    // The ASCII wire carries no request id: the profiler attributes
    // server-side events to the one open client op. Sequential load keeps
    // that attribution sound, and the exactness identity holds regardless.
    let (world, _server, client) = world_pair(
        73,
        Transport::Sockets(Stack::Sdp),
        McServerConfig {
            workers: 2,
            store_model: StoreModel::GlobalLock,
            ..McServerConfig::default()
        },
    );
    let sim = world.sim().clone();
    // Before any profiler attaches, the verb answers "profiler off".
    let off = {
        let client = client.clone();
        sim.block_on(async move { client.stats_report("profile").await.unwrap() })
    };
    assert_eq!(off, vec![("profiler".to_string(), "off".to_string())]);

    let profiler = Profiler::attach(
        world.cluster.tracer(),
        ProfilerConfig {
            keep_paths: true,
            ..ProfilerConfig::default()
        },
    );
    sim.block_on(async move {
        client.set(b"k", &[9u8; 128], 0, 0).await.unwrap();
        for _ in 0..20 {
            client.get(b"k").await.unwrap().unwrap();
        }
        assert_eq!(profiler.completed(), 21);
        let audit = profiler.audit();
        assert_eq!(audit.inexact_ops, 0);
        for cp in profiler.paths() {
            assert!(cp.is_exact());
        }
        assert!(
            profiler.stage_total(PathStage::Service).as_nanos() > 0,
            "sockets worker_service span attributed via the fallback"
        );
        assert!(profiler.stage_total(PathStage::LockHold).as_nanos() > 0);

        // The same verb works over the ASCII protocol.
        let stats = client.stats_report("profile").await.unwrap();
        assert!(
            stats.iter().any(|(k, v)| k == "profile.ops" && v == "21"),
            "stats profile reports over ASCII: {stats:?}"
        );
    });
}

#[test]
fn folded_profile_round_trips_and_nests_lock_frames() {
    let (world, _server, client) = world_pair(
        74,
        Transport::Ucr,
        McServerConfig {
            workers: 2,
            store_model: StoreModel::GlobalLock,
            ..McServerConfig::default()
        },
    );
    let profiler = Profiler::attach(world.cluster.tracer(), ProfilerConfig::default());
    run_gets(&world, client, 10);

    let lines = profiler.folded_lines();
    assert!(!lines.is_empty());
    // Lock holds share their op id with the service span, so they fold
    // as children of `core:worker_service` on the worker lane.
    assert!(
        lines
            .iter()
            .any(|(p, n)| p.contains("core:worker_service;core:lock_hold") && *n > 0),
        "lock_hold nests under worker_service: {lines:?}"
    );
    assert!(lines
        .iter()
        .any(|(p, n)| p.ends_with("core:client_op") && *n > 0));

    // Collapsed-stack round-trip: parse(fold(x)) refolds to the same text.
    let text = folded_text(&lines);
    let parsed = parse_folded(&text).expect("well-formed folded output");
    assert_eq!(parsed, lines);
    assert_eq!(folded_text(&parsed), text);
}

#[test]
fn exemplars_carry_critical_path_breakdown() {
    // Satellite of the profiler: tail exemplars captured by the workload
    // observatory are annotated with their op's critical-path
    // decomposition as it retires, and the dominant stage they report
    // agrees with the profiler's aggregate view.
    let (world, server, client) = world_pair(
        75,
        Transport::Ucr,
        McServerConfig {
            observatory: Some(ObservatoryConfig {
                exemplars: ExemplarConfig {
                    capacity: 32,
                    quantile: 0.5, // capture half of everything: not a tail test
                    min_samples: 8,
                },
                ..ObservatoryConfig::default()
            }),
            ..McServerConfig::default()
        },
    );
    let profiler = Profiler::attach(world.cluster.tracer(), ProfilerConfig::default());
    let ring = server.observatory().expect("observatory on").ring();
    profiler.bind_exemplars(&ring);
    run_gets(&world, client, 40);

    let annotated: Vec<_> = ring
        .snapshot()
        .into_iter()
        .filter(|e| e.path.is_some())
        .collect();
    assert!(!annotated.is_empty(), "captured exemplars gained paths");
    let mut dominants = std::collections::BTreeMap::new();
    for e in &annotated {
        let p = e.path.as_ref().unwrap();
        assert!(p.is_exact(), "annotated path keeps the exactness identity");
        *dominants.entry(p.dominant_stage().label()).or_insert(0u32) += 1;
    }
    let majority = dominants
        .iter()
        .max_by_key(|(_, n)| **n)
        .map(|(s, _)| *s)
        .unwrap();
    assert_eq!(
        majority,
        profiler.dominant_stage().label(),
        "exemplar dominant stages agree with the aggregate: {dominants:?}"
    );
    assert!(
        ring.render().contains("dominant="),
        "the dump format names the dominant stage"
    );
}
