//! Acceptance tests for the metrics observatory: virtual-time sampling
//! costs zero virtual time, the Prometheus exposition round-trips the
//! memcached stats protocol on both client families, `stats reset`
//! zeroes counters and histograms while preserving gauges and their
//! watermarks, and the plain `stats` report pins the UCR runtime
//! counters the paper's optimisations are judged by.

use std::rc::Rc;

use rdma_memcached::rmc::{
    McClient, McClientConfig, McServer, McServerConfig, ObservatoryConfig, SloObjective, Transport,
    World,
};
use rdma_memcached::simnet::{
    HealthMonitor, HealthRules, MonitorBinding, NodeId, Sampler, SamplerConfig, SimDuration, Stack,
};

/// A server config with the workload observatory enabled: default
/// sketch/exemplar sizing plus a single comfortable `get` objective.
fn observed_config() -> McServerConfig {
    McServerConfig {
        observatory: Some(ObservatoryConfig {
            slos: vec![SloObjective {
                op: "get",
                latency_target: SimDuration::from_micros(50),
                objective: 0.99,
                window: SimDuration::from_micros(1000),
            }],
            ..ObservatoryConfig::default()
        }),
        ..McServerConfig::default()
    }
}

fn ucr_world(seed: u64) -> (World, McServer, McClient) {
    let world = World::cluster_b(seed, 4);
    let server = McServer::start(&world, NodeId(0), McServerConfig::default());
    let mut cfg = McClientConfig::single(Transport::Ucr, NodeId(0));
    cfg.pipeline_depth = 8;
    let client = McClient::new(&world, NodeId(1), cfg);
    (world, server, client)
}

/// Runs the reference pipelined workload, returns the end-of-run clock.
fn run_workload(world: &World, client: McClient) -> u64 {
    let sim = world.sim().clone();
    let sim2 = sim.clone();
    sim.block_on(async move {
        let keys: Vec<String> = (0..16).map(|i| format!("obs-{i}")).collect();
        for k in &keys {
            client.set(k.as_bytes(), &[0x42u8; 64], 0, 0).await.unwrap();
        }
        let batch: Vec<&[u8]> = (0..200).map(|i| keys[i % 16].as_bytes()).collect();
        let got = client.get_many(&batch).await.unwrap();
        assert!(got.iter().all(Option::is_some));
        sim2.now().as_nanos()
    })
}

#[test]
fn sampling_adds_no_virtual_time_and_captures_series() {
    let run = |sampled: bool| {
        let (world, _server, client) = ucr_world(91);
        let sampler = Sampler::new(
            world.sim(),
            world.cluster.metrics(),
            SamplerConfig::default(),
        );
        if sampled {
            let monitor = HealthMonitor::new(HealthRules::default(), NodeId(1));
            monitor.set_tracer(Some(world.cluster.tracer().clone()));
            sampler.bind_monitor(MonitorBinding {
                monitor: Rc::clone(&monitor),
                throughput_counter: "client.node1.ops_completed".into(),
                queue_gauge: "client.node1.inflight".into(),
                latency_hist: None,
                error_counter: None,
                slos: Vec::new(),
            });
            sampler.start();
        }
        let end = run_workload(&world, client);
        sampler.stop();
        let rate_points = sampler.values("client.node1.ops_completed.rate").len();
        let inflight_high = world
            .cluster
            .metrics()
            .gauge("client.node1.inflight")
            .high();
        (end, sampler.ticks(), rate_points, inflight_high)
    };
    let (bare_end, bare_ticks, _, bare_high) = run(false);
    let (sampled_end, ticks, rate_points, high) = run(true);
    assert_eq!(bare_ticks, 0);
    assert!(ticks > 0, "the sampler actually ran");
    assert!(rate_points > 0, "throughput rate series captured");
    assert_eq!(
        bare_end, sampled_end,
        "sampling must not move the virtual clock"
    );
    // The layer gauges are workload-driven, not sampler-driven: the
    // in-flight high watermark is identical with and without sampling.
    assert_eq!(bare_high, high);
    assert_eq!(high, 8.0, "pipeline window filled to its depth");
}

#[test]
fn stats_prom_round_trips_on_both_client_families() {
    for transport in [Transport::Ucr, Transport::Sockets(Stack::Sdp)] {
        let world = World::cluster_b(92, 4);
        let _server = McServer::start(&world, NodeId(0), McServerConfig::default());
        let client = McClient::new(
            &world,
            NodeId(1),
            McClientConfig::single(transport, NodeId(0)),
        );
        let sim = world.sim().clone();
        sim.block_on(async move {
            client.set(b"k", &[7u8; 256], 0, 0).await.unwrap();
            client.get(b"k").await.unwrap().unwrap();
            let pairs = client.stats_report("prom").await.unwrap();
            // The exposition rides the stats channel as
            // (first-token, rest-of-line) pairs; rejoining them restores
            // the exact text.
            let text: String = pairs.iter().map(|(k, v)| format!("{k} {v}\n")).collect();
            assert!(
                text.contains("# TYPE rmc_queue_depth gauge"),
                "{transport:?}: worker queue gauge exposed"
            );
            assert!(
                text.contains("# HELP "),
                "{transport:?}: HELP lines present"
            );
            assert!(
                text.lines()
                    .any(|l| l.starts_with("rmc_") && l.contains("node=\"node0\"")),
                "{transport:?}: node label present"
            );
            // Every sample line is `name{labels} value` with a parseable
            // float value.
            for line in text.lines().filter(|l| !l.starts_with('#')) {
                let (series, value) = line.rsplit_once(' ').expect("sample line shape");
                assert!(series.starts_with("rmc_"), "prefixed family: {series}");
                value.parse::<f64>().expect("numeric sample value");
            }
        });
    }
}

#[test]
fn stats_reset_zeroes_counters_and_histograms_but_preserves_watermarks() {
    let (world, _server, client) = ucr_world(93);
    let metrics = world.cluster.metrics().clone();
    let sim = world.sim().clone();
    sim.block_on(async move {
        for i in 0..20 {
            let key = format!("r-{}", i % 4);
            client.set(key.as_bytes(), &[1u8; 64], 0, 0).await.unwrap();
            client.get(key.as_bytes()).await.unwrap().unwrap();
        }
        let lookup = |stats: &[(String, String)], key: &str| -> u64 {
            stats
                .iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("missing {key}"))
                .1
                .parse()
                .unwrap_or_else(|_| panic!("non-integer {key}"))
        };
        let before = client.stats().await.unwrap();
        assert!(lookup(&before, "get_hits") >= 20);
        assert!(lookup(&before, "cmd_set") >= 20);
        assert!(lookup(&before, "ucr_messages_sent") > 0);
        assert!(lookup(&before, "op.get.count") >= 20);

        let ack = client.stats_report("reset").await.unwrap();
        assert_eq!(ack, vec![("reset".to_string(), "ok".to_string())]);

        let after = client.stats().await.unwrap();
        // Counters and histograms restart from zero; the `stats` request
        // that reads them is itself the only op since the reset.
        assert_eq!(lookup(&after, "get_hits"), 0);
        assert_eq!(lookup(&after, "cmd_set"), 0);
        assert_eq!(lookup(&after, "op.get.count"), 0);
        assert!(
            lookup(&after, "ucr_messages_sent") <= 2,
            "only the stats exchange itself"
        );
        // Levels survive: the store still holds every item.
        assert_eq!(lookup(&after, "curr_items"), 4);
        // Gauge watermarks survive too: the worker queue-depth high-water
        // from before the reset is still visible.
        let depth_high = metrics.gauge("mc.node0.worker0.queue_depth").high();
        assert!(depth_high >= 1.0, "watermark preserved across reset");
        // Registry counters were zeroed by the reset; only activity after
        // it (the stats exchanges) re-counts.
        let wakes: u64 = (0..4)
            .map(|w| metrics.counter_value(&format!("mc.node0.worker{w}.wakes")))
            .sum();
        assert!(wakes <= 2, "wake counters restarted, got {wakes}");
    });
}

#[test]
fn observatory_stats_verbs_round_trip_on_both_client_families() {
    for transport in [Transport::Ucr, Transport::Sockets(Stack::Sdp)] {
        let world = World::cluster_b(95, 4);
        let _server = McServer::start(&world, NodeId(0), observed_config());
        let client = McClient::new(
            &world,
            NodeId(1),
            McClientConfig::single(transport, NodeId(0)),
        );
        let sim = world.sim().clone();
        sim.block_on(async move {
            for i in 0..8 {
                let key = format!("wl-{i}");
                client.set(key.as_bytes(), &[3u8; 64], 0, 0).await.unwrap();
                client.get(key.as_bytes()).await.unwrap().unwrap();
            }
            // One key far hotter than the rest.
            for _ in 0..24 {
                client.get(b"wl-0").await.unwrap().unwrap();
            }
            let find = |pairs: &[(String, String)], key: &str| -> String {
                pairs
                    .iter()
                    .find(|(k, _)| k == key)
                    .unwrap_or_else(|| panic!("{transport:?}: missing {key}"))
                    .1
                    .clone()
            };
            let hot = client.stats_report("hot").await.unwrap();
            let total: u64 = find(&hot, "wl.total").parse().unwrap();
            assert_eq!(total, 40, "{transport:?}: 8 sets + 32 gets all sketched");
            assert_eq!(find(&hot, "wl.reads"), "32", "{transport:?}");
            assert_eq!(find(&hot, "wl.writes"), "8", "{transport:?}");
            assert_eq!(
                find(&hot, "hot.0.key"),
                "wl-0",
                "{transport:?}: the hammered key tops the table"
            );
            let est: u64 = find(&hot, "hot.0.est").parse().unwrap();
            let err: u64 = find(&hot, "hot.0.err").parse().unwrap();
            // wl-0: 1 set + 25 gets; space-saving brackets the true count.
            assert!(est.saturating_sub(err) <= 26 && 26 <= est);

            let slo = client.stats_report("slo").await.unwrap();
            assert_eq!(find(&slo, "slo.get.target_us"), "50.000", "{transport:?}");
            let good: u64 = find(&slo, "slo.get.good").parse().unwrap();
            if transport == Transport::Ucr {
                // Service-time objectives are judged on the UCR path.
                assert_eq!(good, 32, "{transport:?}: every get judged good");
                assert_eq!(find(&slo, "slo.get.bad"), "0", "{transport:?}");
            }

            let ex = client.stats_report("exemplars").await.unwrap();
            let seen: u64 = find(&ex, "exemplars.seen").parse().unwrap();
            if transport == Transport::Ucr {
                assert!(seen > 0, "every UCR completion is offered to the gate");
            }
            let _ = find(&ex, "exemplars.captured");
            let _ = find(&ex, "exemplars.dropped");
        });
    }
}

#[test]
fn stats_reset_clears_observatory_state_but_preserves_gauges() {
    let world = World::cluster_b(96, 4);
    let _server = McServer::start(&world, NodeId(0), observed_config());
    let mut cfg = McClientConfig::single(Transport::Ucr, NodeId(0));
    cfg.pipeline_depth = 8;
    let client = McClient::new(&world, NodeId(1), cfg);
    let metrics = world.cluster.metrics().clone();
    let sim = world.sim().clone();
    sim.block_on(async move {
        for i in 0..16 {
            let key = format!("rs-{i}");
            client.set(key.as_bytes(), &[9u8; 64], 0, 0).await.unwrap();
            client.get(key.as_bytes()).await.unwrap().unwrap();
        }
        let find = |pairs: &[(String, String)], key: &str| -> u64 {
            pairs
                .iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("missing {key}"))
                .1
                .parse()
                .unwrap_or_else(|_| panic!("non-integer {key}"))
        };
        let before = client.stats_report("hot").await.unwrap();
        assert_eq!(find(&before, "wl.total"), 32);
        // A prom export publishes the workload gauges, arming their
        // watermarks.
        client.stats_report("prom").await.unwrap();
        let imbalance_high = metrics.gauge("mc.node0.wl.slot_imbalance").high();
        assert!(imbalance_high >= 1.0, "sketch gauge published");

        let ack = client.stats_report("reset").await.unwrap();
        assert_eq!(ack, vec![("reset".to_string(), "ok".to_string())]);

        // Sketch, SLO windows, and the exemplar ring restart from zero;
        // stats requests themselves feed no keys.
        let hot = client.stats_report("hot").await.unwrap();
        assert_eq!(find(&hot, "wl.total"), 0);
        assert!(!hot.iter().any(|(k, _)| k == "hot.0.key"));
        let slo = client.stats_report("slo").await.unwrap();
        assert_eq!(find(&slo, "slo.get.good"), 0);
        assert_eq!(find(&slo, "slo.get.bad"), 0);
        let ex = client.stats_report("exemplars").await.unwrap();
        assert_eq!(find(&ex, "exemplars.len"), 0);
        assert_eq!(find(&ex, "exemplars.captured"), 0);
        // Only the post-reset stats exchanges themselves have been
        // offered to the gate since the reset.
        assert!(find(&ex, "exemplars.seen") <= 4);
        // Gauges are levels: the pre-reset watermark survives.
        assert!(metrics.gauge("mc.node0.wl.slot_imbalance").high() >= imbalance_high);
    });
}

#[test]
fn plain_stats_pins_ucr_runtime_counters() {
    let (world, _server, client) = ucr_world(94);
    let sim = world.sim().clone();
    sim.block_on(async move {
        // A large set rides the rendezvous path (registration cache);
        // small ops ride eager (recv-pool recycling).
        client.set(b"big", &[9u8; 64 * 1024], 0, 0).await.unwrap();
        client.set(b"big", &[9u8; 64 * 1024], 0, 0).await.unwrap();
        for _ in 0..8 {
            client.get(b"big").await.unwrap().unwrap();
        }
        let stats = client.stats().await.unwrap();
        let lookup = |key: &str| -> u64 {
            stats
                .iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("missing {key}"))
                .1
                .parse()
                .unwrap()
        };
        // The observability surface the paper's optimisations are judged
        // by, pinned by name.
        assert!(lookup("ucr_messages_sent") > 0);
        assert!(lookup("ucr_mr_cache_hits") + lookup("ucr_mr_cache_misses") > 0);
        assert!(lookup("ucr_recv_bufs_recycled") > 0);
        let _ = lookup("ucr_eager_copy_saved_bytes");
        let _ = lookup("ucr_rndv_copy_saved_bytes");
        assert!(lookup("ucr_progress_wakes") > 0);
        assert!(lookup("ucr_progress_completions") > 0);
    });
}
