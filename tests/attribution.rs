//! Cross-layer latency-attribution invariants.
//!
//! The metrics layer decomposes every operation into pipeline stages
//! (client serialize → request wire → dispatch wait → worker service →
//! reply wire → client complete). Because the stages are deltas between
//! consecutive boundary timestamps on one virtual clock, their sum must
//! equal the end-to-end latency — any calibration change that breaks a
//! stage boundary (a sleep moved across a mark, a double-counted cost)
//! shows up here directly, where the shape tests in `experiments.rs`
//! would only drift indirectly.

use rmc::Transport;
use rmc_bench::{
    measure_bottlenecks, measure_latency, measure_latency_attributed, ClusterKind, Mix,
};
use simnet::metrics::Stage;
use simnet::Stack;

const ITERS: u32 = 60;
const SIZE: usize = 4096;
const SEED: u64 = 7;

/// Runs the attributed measurement next to the plain one and checks:
/// attaching spans perturbs nothing, every op is attributed, and the
/// per-stage breakdown sums to the end-to-end mean within 1%.
fn check_attribution_invariant(cluster: ClusterKind, transport: Transport) {
    let attr = measure_latency_attributed(cluster, transport, Mix::GetOnly, SIZE, ITERS, SEED);
    let plain = measure_latency(cluster, transport, Mix::GetOnly, SIZE, ITERS, SEED);

    // Spans add no virtual time: the measured mean is bit-identical to a
    // run without instrumentation.
    assert!(
        (attr.mean_us - plain).abs() < 1e-9,
        "{cluster:?}/{transport:?}: instrumented mean {} != plain mean {}",
        attr.mean_us,
        plain
    );
    assert_eq!(
        attr.ops_attributed, ITERS as u64,
        "{cluster:?}/{transport:?}: every timed op must be attributed"
    );

    // The invariant: per-stage breakdown sums to end-to-end within 1%.
    let sum = attr.attributed_mean_us;
    let rel = (sum - attr.mean_us).abs() / attr.mean_us;
    assert!(
        rel <= 0.01,
        "{cluster:?}/{transport:?}: stage sum {sum:.3}us vs end-to-end {:.3}us ({:.3}% off)",
        attr.mean_us,
        rel * 100.0
    );

    // The pipeline stages every transport must traverse are non-trivial.
    for stage in [Stage::RequestWire, Stage::WorkerService, Stage::ReplyWire] {
        assert!(
            attr.stage_us(stage) > 0.0,
            "{cluster:?}/{transport:?}: stage {} must take time, got breakdown {:?}",
            stage.label(),
            attr.stage_means_us
        );
    }
}

#[test]
fn attribution_sums_ucr_cluster_a() {
    check_attribution_invariant(ClusterKind::A, Transport::Ucr);
}

#[test]
fn attribution_sums_ucr_cluster_b() {
    check_attribution_invariant(ClusterKind::B, Transport::Ucr);
}

#[test]
fn attribution_sums_tengige_toe_cluster_a() {
    check_attribution_invariant(ClusterKind::A, Transport::Sockets(Stack::TenGigEToe));
}

#[test]
fn attribution_sums_ipoib_cluster_b() {
    check_attribution_invariant(ClusterKind::B, Transport::Sockets(Stack::Ipoib));
}

/// §VI-D mechanism through the metrics layer: UCR saturates the server's
/// HCA work-request pipeline and bypasses the kernel; a sockets stack
/// saturates the kernel and barely touches the HCA. `measure_bottlenecks`
/// now reads both utilizations from the cluster metrics registry
/// (`node0.hca.utilization` / `node0.kernel.utilization` gauges), so this
/// also covers the export path.
#[test]
fn bottleneck_attribution_flows_through_metrics() {
    let ucr = measure_bottlenecks(ClusterKind::A, Transport::Ucr, 8, 4, 300, 31);
    let toe = measure_bottlenecks(
        ClusterKind::A,
        Transport::Sockets(Stack::TenGigEToe),
        8,
        4,
        300,
        31,
    );
    assert!(
        ucr.hca_utilization > 10.0 * ucr.kernel_utilization,
        "UCR must be HCA-bound, kernel-bypassing: {ucr:?}"
    );
    assert!(
        toe.kernel_utilization > 10.0 * toe.hca_utilization,
        "TOE sockets must be kernel-bound: {toe:?}"
    );
    assert!(
        ucr.tps > toe.tps,
        "kernel bypass must out-rate the kernel path: {} vs {}",
        ucr.tps,
        toe.tps
    );
}

/// The §VI-D worked example from the README: the wire stages of a 4 KB
/// get shrink dramatically from 10GigE-TOE to UCR, while the worker
/// service stage (store execution) is transport-invariant.
#[test]
fn ucr_beats_toe_in_the_wire_stages_not_the_store() {
    let ucr = measure_latency_attributed(
        ClusterKind::A,
        Transport::Ucr,
        Mix::GetOnly,
        SIZE,
        ITERS,
        SEED,
    );
    let toe = measure_latency_attributed(
        ClusterKind::A,
        Transport::Sockets(Stack::TenGigEToe),
        Mix::GetOnly,
        SIZE,
        ITERS,
        SEED,
    );
    let wire = |a: &rmc_bench::AttributedLatency| {
        a.stage_us(Stage::ClientSerialize)
            + a.stage_us(Stage::RequestWire)
            + a.stage_us(Stage::ReplyWire)
    };
    assert!(
        wire(&toe) > 2.0 * wire(&ucr),
        "TOE wire+kernel time {:.3}us should dwarf UCR's {:.3}us",
        wire(&toe),
        wire(&ucr)
    );
    let svc_rel = (toe.stage_us(Stage::WorkerService) - ucr.stage_us(Stage::WorkerService)).abs()
        / ucr.stage_us(Stage::WorkerService);
    assert!(
        svc_rel < 0.05,
        "worker service is transport-invariant: UCR {:.3}us vs TOE {:.3}us",
        ucr.stage_us(Stage::WorkerService),
        toe.stage_us(Stage::WorkerService)
    );
}
