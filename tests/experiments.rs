//! Experiment shape assertions: every quantitative claim of the paper's
//! evaluation (§VI), checked against the reproduction with reduced
//! iteration counts. These are the regression guard for EXPERIMENTS.md —
//! if a calibration change breaks a claim, this suite fails.

use rmc::Transport;
use rmc_bench::{measure_latency, measure_throughput, ClusterKind, Mix};
use simnet::Stack;

const ITERS: u32 = 60;

fn lat(cluster: ClusterKind, t: Transport, mix: Mix, size: usize) -> f64 {
    measure_latency(cluster, t, mix, size, ITERS, 99)
}

const UCR: Transport = Transport::Ucr;
const SDP: Transport = Transport::Sockets(Stack::Sdp);
const IPOIB: Transport = Transport::Sockets(Stack::Ipoib);
const TOE: Transport = Transport::Sockets(Stack::TenGigEToe);
const GIGE: Transport = Transport::Sockets(Stack::OneGigE);

/// §VI headline: 4 KB get ≈ 12 µs on QDR, ≈ 20 µs on DDR.
#[test]
fn headline_4kb_get_latency() {
    let ddr = lat(ClusterKind::A, UCR, Mix::GetOnly, 4096);
    let qdr = lat(ClusterKind::B, UCR, Mix::GetOnly, 4096);
    assert!(
        (17.0..24.0).contains(&ddr),
        "DDR 4KB get {ddr} us, paper ~20"
    );
    assert!(
        (10.0..14.5).contains(&qdr),
        "QDR 4KB get {qdr} us, paper ~12"
    );
}

/// §VI-B (Cluster A): UCR ≥ 4× 10GigE-TOE for all message sizes.
#[test]
fn fig3_ucr_vs_toe_factor_four_all_sizes() {
    for size in [4usize, 1024, 4096, 65536, 512 * 1024] {
        let ucr = lat(ClusterKind::A, UCR, Mix::GetOnly, size);
        let toe = lat(ClusterKind::A, TOE, Mix::GetOnly, size);
        assert!(
            toe / ucr >= 3.8,
            "size {size}: TOE {toe} / UCR {ucr} = {:.2} (paper: >=4)",
            toe / ucr
        );
    }
}

/// §VI-B (Cluster A): UCR beats IPoIB and SDP by ~8× for small-to-medium
/// and ~5× for large messages (abstract: 5–10× over the range).
#[test]
fn fig3_ucr_vs_ib_sockets_factors() {
    for (size, lo, hi) in [
        (64usize, 5.0, 10.5),
        (4096, 5.0, 10.5),
        (512 * 1024, 3.5, 7.0),
    ] {
        for t in [SDP, IPOIB] {
            let ucr = lat(ClusterKind::A, UCR, Mix::GetOnly, size);
            let other = lat(ClusterKind::A, t, Mix::GetOnly, size);
            let f = other / ucr;
            assert!(
                (lo..hi).contains(&f),
                "size {size} {t:?}: factor {f:.2} outside [{lo}, {hi}]"
            );
        }
    }
}

/// §VI-B (Cluster B): UCR ≥ ~10× for small sizes, up to ~4× for large.
#[test]
fn fig4_cluster_b_factors() {
    let ucr_small = lat(ClusterKind::B, UCR, Mix::GetOnly, 64);
    let ipoib_small = lat(ClusterKind::B, IPOIB, Mix::GetOnly, 64);
    let f_small = ipoib_small / ucr_small;
    assert!(
        (8.0..13.0).contains(&f_small),
        "B small IPoIB/UCR factor {f_small:.2} (paper: ~10)"
    );
    let ucr_large = lat(ClusterKind::B, UCR, Mix::GetOnly, 512 * 1024);
    let ipoib_large = lat(ClusterKind::B, IPOIB, Mix::GetOnly, 512 * 1024);
    let f_large = ipoib_large / ucr_large;
    assert!(
        (2.5..4.5).contains(&f_large),
        "B large IPoIB/UCR factor {f_large:.2} (paper: up to 4)"
    );
}

/// §VI-B (Cluster B): SDP is noisier and slightly worse than IPoIB — the
/// QDR SDP artifact.
#[test]
fn fig4_sdp_artifact_on_qdr() {
    let sdp = lat(ClusterKind::B, SDP, Mix::GetOnly, 64);
    let ipoib = lat(ClusterKind::B, IPOIB, Mix::GetOnly, 64);
    assert!(
        sdp > ipoib,
        "SDP {sdp} should be worse than IPoIB {ipoib} on B"
    );
    // And jitter is visible: per-op latencies vary run to run more than
    // IPoIB's (deterministic seeds, different draws).
    let sdp2 = measure_latency(ClusterKind::B, SDP, Mix::GetOnly, 64, 10, 1);
    let sdp3 = measure_latency(ClusterKind::B, SDP, Mix::GetOnly, 64, 10, 2);
    let ipoib2 = measure_latency(ClusterKind::B, IPOIB, Mix::GetOnly, 64, 10, 1);
    let ipoib3 = measure_latency(ClusterKind::B, IPOIB, Mix::GetOnly, 64, 10, 2);
    let sdp_spread = (sdp2 - sdp3).abs();
    let ipoib_spread = (ipoib2 - ipoib3).abs();
    assert!(
        sdp_spread > ipoib_spread,
        "SDP spread {sdp_spread:.2} vs IPoIB spread {ipoib_spread:.2}"
    );
}

/// Cluster A latency ordering at small sizes: UCR < TOE < SDP < IPoIB < 1GigE.
#[test]
fn fig3_transport_ordering() {
    let ucr = lat(ClusterKind::A, UCR, Mix::GetOnly, 64);
    let toe = lat(ClusterKind::A, TOE, Mix::GetOnly, 64);
    let sdp = lat(ClusterKind::A, SDP, Mix::GetOnly, 64);
    let ipoib = lat(ClusterKind::A, IPOIB, Mix::GetOnly, 64);
    let gige = lat(ClusterKind::A, GIGE, Mix::GetOnly, 64);
    assert!(ucr < toe && toe < sdp && sdp < ipoib && ipoib < gige,
        "ordering violated: UCR {ucr:.1} TOE {toe:.1} SDP {sdp:.1} IPoIB {ipoib:.1} 1GigE {gige:.1}");
}

/// §VI-C: mixed instruction sets follow the same trends as pure set/get.
#[test]
fn fig5_mixed_follows_same_trends() {
    for mix in [Mix::NonInterleaved, Mix::Interleaved] {
        let ucr = lat(ClusterKind::A, UCR, mix, 1024);
        let toe = lat(ClusterKind::A, TOE, mix, 1024);
        let ipoib = lat(ClusterKind::A, IPOIB, mix, 1024);
        assert!(toe / ucr >= 3.5, "{mix:?}: TOE/UCR {:.2}", toe / ucr);
        assert!(ipoib / ucr >= 5.0, "{mix:?}: IPoIB/UCR {:.2}", ipoib / ucr);
        // Mixed latency sits between pure set and pure get (they are
        // nearly equal here, as in the paper's plots).
        let pure_get = lat(ClusterKind::A, UCR, Mix::GetOnly, 1024);
        assert!((ucr / pure_get - 1.0).abs() < 0.35, "{mix:?} vs pure get");
    }
}

/// §VI-D (Cluster A): UCR ≈ 6× 10GigE-TOE in small-get TPS; TOE > IPoIB.
#[test]
fn fig6_cluster_a_throughput_shape() {
    let ops = 400;
    let ucr = measure_throughput(ClusterKind::A, UCR, 16, 4, ops, 6);
    let toe = measure_throughput(ClusterKind::A, TOE, 16, 4, ops, 6);
    let ipoib = measure_throughput(ClusterKind::A, IPOIB, 16, 4, ops, 6);
    let f = ucr / toe;
    assert!(
        (5.0..7.5).contains(&f),
        "UCR/TOE TPS factor {f:.2} (paper: ~6)"
    );
    assert!(
        toe > ipoib,
        "TOE {toe:.0} must outperform IPoIB {ipoib:.0} (§VI-D)"
    );
}

/// §VI-D (Cluster B): ≈1.8 M TPS for UCR at 4 B/16 clients; ≈6× SDP;
/// SDP below IPoIB.
#[test]
fn fig6_cluster_b_throughput_shape() {
    let ops = 400;
    let ucr = measure_throughput(ClusterKind::B, UCR, 16, 4, ops, 6);
    let sdp = measure_throughput(ClusterKind::B, SDP, 16, 4, ops, 6);
    let ipoib = measure_throughput(ClusterKind::B, IPOIB, 16, 4, ops, 6);
    assert!(
        (1_500_000.0..2_100_000.0).contains(&ucr),
        "UCR TPS on QDR {ucr:.0} (paper: ~1.8M)"
    );
    let f = ucr / sdp;
    assert!(
        (4.5..8.0).contains(&f),
        "UCR/SDP TPS factor {f:.2} (paper: ~6)"
    );
    assert!(
        sdp < ipoib,
        "SDP {sdp:.0} below IPoIB {ipoib:.0} on B (§VI-D)"
    );
}

/// Set and Get behave alike across sizes (paper plots them as twins).
#[test]
fn set_tracks_get() {
    for size in [64usize, 4096] {
        let set = lat(ClusterKind::B, UCR, Mix::SetOnly, size);
        let get = lat(ClusterKind::B, UCR, Mix::GetOnly, size);
        let ratio = set / get;
        assert!(
            (0.8..1.25).contains(&ratio),
            "size {size}: set {set:.1} vs get {get:.1}"
        );
    }
}

/// Determinism: the same experiment with the same seed reproduces the
/// identical simulated result — the property that makes every number in
/// EXPERIMENTS.md replayable.
#[test]
fn experiments_are_reproducible() {
    let a = lat(ClusterKind::A, UCR, Mix::GetOnly, 1024);
    let b = lat(ClusterKind::A, UCR, Mix::GetOnly, 1024);
    assert_eq!(a, b);
    let t1 = measure_throughput(ClusterKind::B, SDP, 8, 4, 200, 5);
    let t2 = measure_throughput(ClusterKind::B, SDP, 8, 4, 200, 5);
    assert_eq!(t1, t2);
}
