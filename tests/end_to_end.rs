//! Cross-crate end-to-end tests through the facade crate: the full stack
//! (simnet → verbs → ucr → rmc, and simnet → socksim → rmc) exercised the
//! way a downstream user would drive it.

use rdma_memcached::rmc::{
    Distribution, McClient, McClientConfig, McServer, McServerConfig, Transport, World,
};
use rdma_memcached::simnet::{NodeId, SimDuration, Stack};

#[test]
fn facade_reexports_work() {
    // Types from every layer are reachable through the facade.
    let _ = rdma_memcached::simnet::SimTime::ZERO;
    let _ = rdma_memcached::verbs::Access::ALL;
    let _ = rdma_memcached::ucr::PACKET_HEADER_BYTES;
    let _ = rdma_memcached::mcstore::MAX_KEY_LEN;
    let _ = rdma_memcached::mcproto::Command::Stats { arg: None };
    let _ = rdma_memcached::socksim::DEFAULT_CONNECT_TIMEOUT;
}

#[test]
fn cache_aside_pattern_end_to_end() {
    // The canonical usage from the paper's introduction: cache database
    // results, serve reads from memory.
    let world = World::cluster_b(123, 4);
    let _server = McServer::start(&world, NodeId(0), McServerConfig::default());
    let cache = McClient::new(
        &world,
        NodeId(1),
        McClientConfig::single(Transport::Ucr, NodeId(0)),
    );
    let sim = world.sim().clone();
    let sim2 = sim.clone();
    sim.block_on(async move {
        let mut db_lookups = 0u32;
        for round in 0..3 {
            for user in 0..20u32 {
                let key = format!("user:{user}");
                if cache.get(key.as_bytes()).await.unwrap().is_none() {
                    // "Database" work.
                    sim2.sleep(SimDuration::from_millis(1)).await;
                    db_lookups += 1;
                    cache
                        .set(key.as_bytes(), format!("row-{user}").as_bytes(), 0, 0)
                        .await
                        .unwrap();
                }
            }
            if round == 0 {
                assert_eq!(db_lookups, 20, "cold cache misses everything");
            }
        }
        assert_eq!(db_lookups, 20, "warm rounds never touch the database");
    });
}

#[test]
fn eight_servers_sixteen_clients_mixed_transports() {
    // A deployment-shaped scenario: a farm of servers, many clients, both
    // client families, multi-server routing, all on one simulated fabric.
    let world = World::cluster_a(321, 28);
    let servers: Vec<NodeId> = (0..8).map(NodeId).collect();
    let handles: Vec<_> = servers
        .iter()
        .map(|&n| McServer::start(&world, n, McServerConfig::default()))
        .collect();

    let sim = world.sim().clone();
    let mut joins = Vec::new();
    for i in 0..16u32 {
        let transport = if i % 2 == 0 {
            Transport::Ucr
        } else {
            Transport::Sockets(Stack::Sdp)
        };
        let cfg = McClientConfig {
            transport,
            servers: servers.clone(),
            port: 11211,
            op_timeout: SimDuration::from_millis(250),
            distribution: if i % 4 < 2 {
                Distribution::Modula
            } else {
                Distribution::Ketama
            },
            ..McClientConfig::single(transport, servers[0])
        };
        let client = McClient::new(&world, NodeId(8 + i), cfg);
        joins.push(sim.spawn(async move {
            for j in 0..40u32 {
                let key = format!("client{i}:item{j}");
                client
                    .set(key.as_bytes(), key.as_bytes(), 0, 0)
                    .await
                    .unwrap();
            }
            for j in 0..40u32 {
                let key = format!("client{i}:item{j}");
                let v = client.get(key.as_bytes()).await.unwrap().unwrap();
                assert_eq!(v.data, key.as_bytes());
            }
        }));
    }
    sim.block_on(async move {
        for j in joins {
            j.await;
        }
    });
    let total: u64 = handles.iter().map(|s| s.curr_items()).sum();
    assert_eq!(total, 16 * 40);
    // Both request families hit the farm.
    let ucr: u64 = handles.iter().map(|s| s.stats().ucr_requests.get()).sum();
    let sock: u64 = handles.iter().map(|s| s.stats().sock_requests.get()).sum();
    assert!(ucr > 0 && sock > 0);
}

#[test]
fn expiry_is_visible_through_the_client() {
    let world = World::cluster_b(9, 3);
    let _server = McServer::start(&world, NodeId(0), McServerConfig::default());
    let client = McClient::new(
        &world,
        NodeId(1),
        McClientConfig::single(Transport::Ucr, NodeId(0)),
    );
    let sim = world.sim().clone();
    let sim2 = sim.clone();
    sim.block_on(async move {
        client.set(b"ephemeral", b"v", 0, 2).await.unwrap(); // 2 s TTL
        assert!(client.get(b"ephemeral").await.unwrap().is_some());
        sim2.sleep(SimDuration::from_secs(3)).await;
        assert!(
            client.get(b"ephemeral").await.unwrap().is_none(),
            "item must expire after its TTL"
        );
        // touch extends lifetimes.
        client.set(b"kept", b"v", 0, 2).await.unwrap();
        sim2.sleep(SimDuration::from_secs(1)).await;
        assert!(client.touch(b"kept", 60).await.unwrap());
        sim2.sleep(SimDuration::from_secs(3)).await;
        assert!(client.get(b"kept").await.unwrap().is_some());
    });
}

#[test]
fn counters_session_pattern() {
    // Rate-limiter / counter usage: atomic incr across a shared key.
    let world = World::cluster_b(8, 5);
    let _server = McServer::start(&world, NodeId(0), McServerConfig::default());
    let sim = world.sim().clone();
    let mut joins = Vec::new();
    for i in 0..3u32 {
        let client = McClient::new(
            &world,
            NodeId(1 + i),
            McClientConfig::single(Transport::Ucr, NodeId(0)),
        );
        joins.push(sim.spawn(async move {
            let _ = client.add(b"hits", b"0", 0, 0).await;
            for _ in 0..100 {
                client.incr(b"hits", 1).await.unwrap();
            }
        }));
    }
    let checker = McClient::new(
        &world,
        NodeId(4),
        McClientConfig::single(Transport::Ucr, NodeId(0)),
    );
    sim.block_on(async move {
        for j in joins {
            j.await;
        }
        let v = checker.get(b"hits").await.unwrap().unwrap();
        let n: u64 = String::from_utf8(v.data).unwrap().parse().unwrap();
        assert_eq!(n, 300, "no lost increments");
    });
}
