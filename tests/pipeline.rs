//! Acceptance tests for the pipelined request engine: out-of-order
//! response correlation on one connection, the batch APIs over both
//! transport families (including rendezvous-size values mid-pipeline),
//! the UCR rendezvous registration cache's hit/miss accounting, and the
//! invariants the engine must preserve — tracing still costs zero
//! virtual time and equal seeds give equal clocks.

use rdma_memcached::rmc::{McClient, McClientConfig, McServer, McServerConfig, Transport, World};
use rdma_memcached::simnet::{EventRecorder, NodeId, SimDuration, Stack};
use rdma_memcached::ucr;

fn ucr_world(seed: u64, depth: usize) -> (World, McServer, McClient) {
    let world = World::cluster_b(seed, 4);
    let server = McServer::start(&world, NodeId(0), McServerConfig::default());
    let mut cfg = McClientConfig::single(Transport::Ucr, NodeId(0));
    cfg.pipeline_depth = depth;
    let client = McClient::new(&world, NodeId(1), cfg);
    (world, server, client)
}

/// Two gets issued back-to-back on one UCR connection complete out of
/// order: the first names a 64 KB value whose response rides the
/// rendezvous path (an extra advertise + RDMA-read round trip), the
/// second a 4 B value answered eagerly. The small response lands while
/// the large one is still being pulled, and the in-flight table keyed by
/// request id hands each completion to the right caller.
#[test]
fn responses_correlate_out_of_order() {
    let (world, _server, client) = ucr_world(71, 2);
    let sim = world.sim().clone();
    sim.block_on(async move {
        let big = vec![0xb0u8; 64 * 1024];
        client.set(b"big", &big, 0, 0).await.unwrap();
        client.set(b"small", b"tiny", 0, 0).await.unwrap();

        let in_big = client.issue_get(b"big").await.unwrap();
        let in_small = client.issue_get(b"small").await.unwrap();
        assert_ne!(in_big.req_id(), in_small.req_id());

        // The second-issued op completes first; the first is still in
        // flight (its response has not landed) at that moment.
        let small = in_small.complete().await.unwrap().expect("hit");
        assert_eq!(small.data, b"tiny");
        assert!(
            !in_big.is_ready(),
            "the rendezvous response must still be in flight when the eager one lands"
        );
        let got_big = in_big.complete().await.unwrap().expect("hit");
        assert_eq!(got_big.data, big);
    });
}

/// The batch APIs at depth 4 with value sizes straddling the eager
/// threshold: sets and gets that mix eager and rendezvous transfers in
/// one pipeline window all land on the right keys.
#[test]
fn pipelined_batches_mix_eager_and_rendezvous() {
    let (world, _server, client) = ucr_world(72, 4);
    let sim = world.sim().clone();
    sim.block_on(async move {
        let sizes = [4usize, 16 * 1024, 64, 32 * 1024, 512, 9000, 8, 20 * 1024];
        let keys: Vec<String> = (0..sizes.len()).map(|i| format!("mix-{i}")).collect();
        let values: Vec<Vec<u8>> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| vec![i as u8 + 1; s])
            .collect();

        let items: Vec<(&[u8], &[u8])> = keys
            .iter()
            .zip(&values)
            .map(|(k, v)| (k.as_bytes(), v.as_slice()))
            .collect();
        let stored = client.set_many(&items, 0, 0).await.unwrap();
        assert_eq!(stored.len(), sizes.len());
        assert!(
            stored.iter().all(Result::is_ok),
            "every pipelined set lands"
        );

        let mut lookups: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
        lookups.push(b"absent");
        let got = client.get_many(&lookups).await.unwrap();
        assert_eq!(got.len(), sizes.len() + 1);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(&got[i].as_ref().expect("hit").data, v, "key mix-{i}");
        }
        assert!(got[sizes.len()].is_none(), "missing key reports a miss");
    });
}

/// The same batch APIs over the ASCII sockets transport: commands are
/// written ahead and responses read back in FIFO order from a shared
/// parse buffer.
#[test]
fn pipelined_batches_work_over_sockets() {
    let world = World::cluster_b(73, 4);
    let _server = McServer::start(&world, NodeId(0), McServerConfig::default());
    let mut cfg = McClientConfig::single(Transport::Sockets(Stack::Sdp), NodeId(0));
    cfg.pipeline_depth = 8;
    let client = McClient::new(&world, NodeId(1), cfg);
    let sim = world.sim().clone();
    sim.block_on(async move {
        let items: Vec<(Vec<u8>, Vec<u8>)> = (0..32)
            .map(|i| {
                (
                    format!("sock-{i}").into_bytes(),
                    vec![i as u8; 16 + 17 * i as usize],
                )
            })
            .collect();
        let borrowed: Vec<(&[u8], &[u8])> = items
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        let stored = client.set_many(&borrowed, 0, 0).await.unwrap();
        assert!(stored.iter().all(Result::is_ok));
        let keys: Vec<&[u8]> = items.iter().map(|(k, _)| k.as_slice()).collect();
        let got = client.get_many(&keys).await.unwrap();
        for (i, (_, v)) in items.iter().enumerate() {
            assert_eq!(&got[i].as_ref().expect("hit").data, v);
        }
    });
}

/// Rendezvous registration-cache accounting, driven at the UCR layer:
/// repeated large sends from one source buffer register once and hit
/// thereafter; with the cache disabled every send is a fresh miss.
#[test]
fn registration_cache_counts_hits_and_misses() {
    let run = |cache_capacity: usize, sends: u32| {
        const MSG: u16 = 7;
        const PORT: u16 = 9099;
        let world = World::cluster_b(74, 2);
        let sim = world.sim().clone();
        let srv = ucr::UcrRuntime::new(&world.ib, NodeId(0));
        srv.register_handler(
            MSG,
            ucr::FnHandler(|_: &ucr::Endpoint, _: &[u8], _: ucr::AmData| {}),
        );
        let listener = srv.listen(PORT).unwrap();
        sim.spawn(async move {
            let mut eps = Vec::new();
            while let Ok(ep) = listener.accept().await {
                eps.push(ep);
            }
        });
        let cli = ucr::UcrRuntime::new(&world.ib, NodeId(1));
        cli.set_mr_cache_capacity(cache_capacity);
        let cli2 = cli.clone();
        sim.block_on(async move {
            let timeout = SimDuration::from_millis(250);
            let ep = cli2.connect(NodeId(0), PORT, timeout).await.unwrap();
            let buf = vec![5u8; 64 * 1024];
            assert!(buf.len() > cli2.eager_threshold());
            for _ in 0..sends {
                let ctr = cli2.counter();
                ep.send_message(
                    MSG,
                    b"",
                    &buf,
                    ucr::SendOptions {
                        completion: Some(ctr.clone()),
                        ..Default::default()
                    },
                )
                .await
                .unwrap();
                ctr.wait_for(1, timeout).await.unwrap();
            }
            let st = cli2.stats();
            (st.mr_cache_hits.get(), st.mr_cache_misses.get())
        })
    };

    // One registration, then pure hits, from the same buffer.
    assert_eq!(run(64, 16), (15, 1));
    // Capacity 0 disables the cache: every send registers afresh.
    assert_eq!(run(0, 16), (0, 16));
}

/// Pin-down regression: once a buffer is "freed" (its registration
/// invalidated through the buffer-free hook), the cached MR must be
/// deregistered and evicted — a later send from reused memory at the
/// same address must register afresh instead of reading through the
/// stale cached MR.
#[test]
fn invalidated_registration_is_never_reused() {
    const MSG: u16 = 7;
    const PORT: u16 = 9099;
    let world = World::cluster_b(75, 2);
    let sim = world.sim().clone();
    let srv = ucr::UcrRuntime::new(&world.ib, NodeId(0));
    srv.register_handler(
        MSG,
        ucr::FnHandler(|_: &ucr::Endpoint, _: &[u8], _: ucr::AmData| {}),
    );
    let listener = srv.listen(PORT).unwrap();
    sim.spawn(async move {
        let mut eps = Vec::new();
        while let Ok(ep) = listener.accept().await {
            eps.push(ep);
        }
    });
    let cli = ucr::UcrRuntime::new(&world.ib, NodeId(1));
    cli.set_mr_cache_capacity(64);
    let cli2 = cli.clone();
    sim.block_on(async move {
        let timeout = SimDuration::from_millis(250);
        let ep = cli2.connect(NodeId(0), PORT, timeout).await.unwrap();
        let buf = vec![5u8; 64 * 1024];
        assert!(buf.len() > cli2.eager_threshold());
        // One send from `buf`, completion-awaited, so the registration is
        // idle (reusable) when the next send looks it up.
        macro_rules! send_buf {
            () => {{
                let ctr = cli2.counter();
                ep.send_message(
                    MSG,
                    b"",
                    &buf,
                    ucr::SendOptions {
                        completion: Some(ctr.clone()),
                        ..Default::default()
                    },
                )
                .await
                .unwrap();
                ctr.wait_for(1, timeout).await.unwrap();
            }};
        }

        // Populate the cache, then hit it.
        send_buf!();
        send_buf!();
        let st = cli2.stats();
        assert_eq!((st.mr_cache_hits.get(), st.mr_cache_misses.get()), (1, 1));
        assert_eq!(cli2.mr_cache_len(), 1);

        // The application frees the buffer: the hook must deregister and
        // evict the cached MR immediately.
        let evicted = cli2.invalidate_registration(buf.as_ptr() as usize, buf.len());
        assert_eq!(evicted, 1, "exactly the freed buffer's MR evicted");
        assert_eq!(cli2.mr_cache_len(), 0);
        assert_eq!(st.mr_cache_invalidations.get(), 1);

        // Memory reused at the same address must not resolve to the
        // stale registration: the next send is a fresh miss.
        send_buf!();
        assert_eq!((st.mr_cache_hits.get(), st.mr_cache_misses.get()), (1, 2));
        assert_eq!(cli2.mr_cache_len(), 1);

        // Invalidating an address the cache has never seen is a no-op.
        assert_eq!(cli2.invalidate_registration(0xdead_0000, 4096), 0);
        assert_eq!(st.mr_cache_invalidations.get(), 1);
    });
}

/// Overlapping rendezvous sends from one borrowed buffer must not share
/// one registration: the first transfer's advertise token is still
/// outstanding when the second send rewrites the source buffer, so the
/// cache must fall back to a fresh registration instead of rewriting the
/// region the target is about to RDMA-read. Each message arrives with
/// the payload it was sent with, and only an idle registration counts as
/// a hit.
#[test]
fn busy_cached_registration_is_not_rewritten() {
    use std::cell::RefCell;
    use std::rc::Rc;

    const MSG: u16 = 7;
    const PORT: u16 = 9099;
    let world = World::cluster_b(77, 2);
    let sim = world.sim().clone();
    let srv = ucr::UcrRuntime::new(&world.ib, NodeId(0));
    let received: Rc<RefCell<Vec<Vec<u8>>>> = Rc::new(RefCell::new(Vec::new()));
    let received2 = received.clone();
    srv.register_handler(
        MSG,
        ucr::FnHandler(move |_: &ucr::Endpoint, _: &[u8], data: ucr::AmData| {
            received2
                .borrow_mut()
                .push(data.into_vec().unwrap_or_default());
        }),
    );
    let listener = srv.listen(PORT).unwrap();
    sim.spawn(async move {
        let mut eps = Vec::new();
        while let Ok(ep) = listener.accept().await {
            eps.push(ep);
        }
    });
    let cli = ucr::UcrRuntime::new(&world.ib, NodeId(1));
    let cli2 = cli.clone();
    sim.block_on(async move {
        let timeout = SimDuration::from_millis(250);
        let ep = cli2.connect(NodeId(0), PORT, timeout).await.unwrap();
        let mut buf = vec![1u8; 64 * 1024];
        assert!(buf.len() > cli2.eager_threshold());

        let c1 = cli2.counter();
        ep.send_message(
            MSG,
            b"",
            &buf,
            ucr::SendOptions {
                completion: Some(c1.clone()),
                ..Default::default()
            },
        )
        .await
        .unwrap();
        // The first transfer is only advertised so far; rewrite the
        // source buffer and send again from the same address while its
        // token is still outstanding.
        buf.iter_mut().for_each(|b| *b = 2);
        let c2 = cli2.counter();
        ep.send_message(
            MSG,
            b"",
            &buf,
            ucr::SendOptions {
                completion: Some(c2.clone()),
                ..Default::default()
            },
        )
        .await
        .unwrap();
        c1.wait_for(1, timeout).await.unwrap();
        c2.wait_for(1, timeout).await.unwrap();

        {
            let got = received.borrow();
            assert_eq!(got.len(), 2);
            assert!(
                got[0].iter().all(|&b| b == 1),
                "first transfer must deliver the payload it advertised"
            );
            assert!(got[1].iter().all(|&b| b == 2));
        }

        // Both sends registered afresh: the second found the cached
        // registration busy. A third send from the now-idle buffer hits.
        let st = cli2.stats();
        assert_eq!((st.mr_cache_hits.get(), st.mr_cache_misses.get()), (0, 2));
        let c3 = cli2.counter();
        ep.send_message(
            MSG,
            b"",
            &buf,
            ucr::SendOptions {
                completion: Some(c3.clone()),
                ..Default::default()
            },
        )
        .await
        .unwrap();
        c3.wait_for(1, timeout).await.unwrap();
        assert_eq!((st.mr_cache_hits.get(), st.mr_cache_misses.get()), (1, 2));
    });
}

/// Abandoned in-flight handles must not leak parked responses: dropping
/// an issued get before its response arrives flags the request id so
/// the handler discards the late response, and dropping one after the
/// response landed removes the parked entry — either way the in-flight
/// table drains to empty and the connection keeps working.
#[test]
fn dropped_in_flight_handles_leave_no_parked_responses() {
    let (world, _server, client) = ucr_world(78, 2);
    let sim = world.sim().clone();
    let sim2 = sim.clone();
    sim.block_on(async move {
        client.set(b"k", b"value", 0, 0).await.unwrap();

        // Dropped before the response arrives.
        let handle = client.issue_get(b"k").await.unwrap();
        drop(handle);
        sim2.sleep(SimDuration::from_millis(50)).await;
        assert_eq!(
            client.pending_responses(),
            0,
            "a late response for an abandoned op must be discarded"
        );

        // Dropped after the response arrives.
        let handle = client.issue_get(b"k").await.unwrap();
        while !handle.is_ready() {
            sim2.sleep(SimDuration::from_millis(1)).await;
        }
        assert_eq!(client.pending_responses(), 1);
        drop(handle);
        assert_eq!(
            client.pending_responses(),
            0,
            "dropping a ready handle must scrub its parked response"
        );

        // The connection is unaffected by the abandoned ops.
        let v = client.get(b"k").await.unwrap().expect("hit");
        assert_eq!(v.data, b"value");
    });
}

/// Tracing must not move the virtual clock on the new pipelined paths
/// either: a depth-8 batched workload mixing eager and rendezvous sizes
/// reaches the same end time traced and untraced.
#[test]
fn tracing_adds_no_virtual_time_to_pipelined_paths() {
    let run = |traced: bool| {
        let (world, _server, client) = ucr_world(75, 8);
        let recorder = EventRecorder::new();
        if traced {
            world.cluster.tracer().add_sink(recorder.clone());
        }
        let sim = world.sim().clone();
        let sim2 = sim.clone();
        let end = sim.block_on(async move {
            let keys: Vec<String> = (0..24).map(|i| format!("t-{i}")).collect();
            let values: Vec<Vec<u8>> = (0..24)
                .map(|i| vec![i as u8; if i % 5 == 0 { 16 * 1024 } else { 64 }])
                .collect();
            let items: Vec<(&[u8], &[u8])> = keys
                .iter()
                .zip(&values)
                .map(|(k, v)| (k.as_bytes(), v.as_slice()))
                .collect();
            client.set_many(&items, 0, 0).await.unwrap();
            let lookups: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
            for _ in 0..4 {
                let got = client.get_many(&lookups).await.unwrap();
                assert!(got.iter().all(Option::is_some));
            }
            sim2.now().as_nanos()
        });
        (end, recorder.len())
    };
    let (untraced_end, _) = run(false);
    let (traced_end, recorded) = run(true);
    assert!(recorded > 0, "the traced run actually recorded events");
    assert_eq!(
        untraced_end, traced_end,
        "tracing must not move the virtual clock"
    );
}

/// Equal seeds give bit-equal clocks: the pipelined engine (in-flight
/// table, registration cache, recv-buffer pool, batched worker drain) is
/// fully deterministic.
#[test]
fn pipelined_runs_are_deterministic() {
    let run = || {
        let (world, _server, client) = ucr_world(76, 8);
        let sim = world.sim().clone();
        let sim2 = sim.clone();
        sim.block_on(async move {
            let keys: Vec<String> = (0..32).map(|i| format!("d-{i}")).collect();
            let values: Vec<Vec<u8>> = (0..32)
                .map(|i| vec![i as u8; if i % 7 == 0 { 32 * 1024 } else { 128 }])
                .collect();
            let items: Vec<(&[u8], &[u8])> = keys
                .iter()
                .zip(&values)
                .map(|(k, v)| (k.as_bytes(), v.as_slice()))
                .collect();
            client.set_many(&items, 0, 0).await.unwrap();
            let lookups: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
            for _ in 0..3 {
                client.get_many(&lookups).await.unwrap();
            }
            sim2.now().as_nanos()
        })
    };
    assert_eq!(run(), run(), "same seed, same virtual end time");
}
