//! Acceptance tests for the cross-layer tracing subsystem: the Perfetto
//! export of one traced get carries correlated events from every layer,
//! tracing costs zero virtual time, the flight recorder captures the
//! QP-level tail of a forced endpoint failure, and the `stats trace` /
//! per-op histogram surfaces report through the memcached protocol.

use rdma_memcached::rmc::{McClient, McClientConfig, McServer, McServerConfig, Transport, World};
use rdma_memcached::simnet::trace::{Layer, Phase};
use rdma_memcached::simnet::trace_export::{chrome_trace_json, parse_json, Json};
use rdma_memcached::simnet::{EventRecorder, NodeId};

fn ucr_world(seed: u64) -> (World, McServer, McClient) {
    let world = World::cluster_b(seed, 4);
    let server = McServer::start(&world, NodeId(0), McServerConfig::default());
    let client = McClient::new(
        &world,
        NodeId(1),
        McClientConfig::single(Transport::Ucr, NodeId(0)),
    );
    (world, server, client)
}

/// Items of the exported `traceEvents` array matching a predicate.
fn items<'a>(trace: &'a Json, pred: impl Fn(&Json) -> bool + 'a) -> Vec<&'a Json> {
    trace
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array")
        .iter()
        .filter(|it| pred(it))
        .collect()
}

fn field<'a>(item: &'a Json, key: &str) -> &'a str {
    item.get(key).and_then(|v| v.as_str()).unwrap_or("")
}

#[test]
fn four_kb_get_trace_correlates_all_three_layers() {
    let (world, _server, client) = ucr_world(61);
    let recorder = EventRecorder::new();
    world.cluster.tracer().add_sink(recorder.clone());
    let sim = world.sim().clone();
    sim.block_on(async move {
        client.set(b"k", &vec![0x4bu8; 4096], 0, 0).await.unwrap();
        recorder.take(); // trace exactly the one get
        client.get(b"k").await.unwrap().unwrap();

        let trace = parse_json(&chrome_trace_json(&recorder.events())).expect("valid JSON");

        // Core: the client op span, the server dispatch marker, and the
        // worker service span all share the request id.
        let begins = items(&trace, |it| {
            field(it, "ph") == "b" && field(it, "name") == "client_op"
        });
        assert_eq!(begins.len(), 1, "exactly one traced client op");
        let req_id = field(begins[0], "id").to_string();
        assert!(!req_id.is_empty());
        for (name, ph) in [
            ("client_op", "e"),
            ("dispatch", "i"),
            ("worker_service", "b"),
            ("worker_service", "e"),
        ] {
            let matching = items(&trace, |it| {
                field(it, "name") == name && field(it, "ph") == ph && field(it, "id") == req_id
            });
            assert_eq!(matching.len(), 1, "core event {name}/{ph} with id {req_id}");
        }

        // Verbs: the request's RC send posts and completes (begin + end
        // pairs sharing an id), on both directions of the exchange.
        let sends = items(&trace, |it| {
            field(it, "cat") == "verbs" && field(it, "name") == "send" && field(it, "ph") == "b"
        });
        assert!(sends.len() >= 2, "request and response sends traced");
        for s in &sends {
            let id = field(s, "id");
            let ends = items(&trace, |it| {
                field(it, "cat") == "verbs"
                    && field(it, "name") == "send"
                    && field(it, "ph") == "e"
                    && field(it, "id") == id
            });
            assert_eq!(ends.len(), 1, "send span {id} completes");
        }

        // UCR: the 4 KB payload rides the eager path, and the client's
        // counter is bumped when the response lands.
        assert!(
            !items(&trace, |it| field(it, "name") == "am_send_eager").is_empty(),
            "eager AM send traced"
        );
        assert!(
            !items(&trace, |it| field(it, "name") == "counter_bump").is_empty(),
            "counter bump traced"
        );

        // The UCR request send shares its wr_id with the verbs-level
        // send span: the same transfer, seen by both layers.
        let am = items(&trace, |it| field(it, "name") == "am_send_eager");
        let am_id = field(am[0], "id");
        assert!(
            sends.iter().any(|s| field(s, "id") == am_id),
            "AM send {am_id} has a matching verbs send span"
        );
    });
}

#[test]
fn tracing_adds_no_virtual_time() {
    let run = |traced: bool| {
        let (world, _server, client) = ucr_world(62);
        let recorder = EventRecorder::new();
        if traced {
            world.cluster.tracer().add_sink(recorder.clone());
            world.cluster.tracer().set_flight_capacity(8);
        }
        let sim = world.sim().clone();
        let sim2 = sim.clone();
        let end = sim.block_on(async move {
            client.set(b"k", &vec![7u8; 4096], 0, 0).await.unwrap();
            for _ in 0..20 {
                client.get(b"k").await.unwrap().unwrap();
            }
            sim2.now().as_nanos()
        });
        (end, recorder.len())
    };
    let (untraced_end, _) = run(false);
    let (traced_end, recorded) = run(true);
    assert!(recorded > 0, "the traced run actually recorded events");
    assert_eq!(
        untraced_end, traced_end,
        "tracing must not move the virtual clock"
    );
}

#[test]
fn bypass_tracing_adds_no_virtual_time() {
    // The clock-equality guarantee extends to the server-CPU-bypass GET
    // path: descriptor lookups, one-sided reads, and their spans must
    // cost zero virtual time when a sink is attached.
    let run = |traced: bool| {
        let world = World::cluster_b(64, 4);
        let _server = McServer::start(&world, NodeId(0), McServerConfig::default());
        let client = McClient::new(
            &world,
            NodeId(1),
            McClientConfig {
                bypass_get: true,
                ..McClientConfig::single(Transport::Ucr, NodeId(0))
            },
        );
        let recorder = EventRecorder::new();
        if traced {
            world.cluster.tracer().add_sink(recorder.clone());
            world.cluster.tracer().set_flight_capacity(8);
        }
        let sim = world.sim().clone();
        let sim2 = sim.clone();
        let end = sim.block_on(async move {
            client.set(b"k", &vec![7u8; 4096], 0, 0).await.unwrap();
            for _ in 0..20 {
                client.get(b"k").await.unwrap().unwrap();
            }
            let bypassed = client.ucr_runtime().unwrap().stats().bypass_reads.get();
            assert_eq!(bypassed, 20, "every get rode the one-sided path");
            sim2.now().as_nanos()
        });
        (end, recorder.len())
    };
    let (untraced_end, _) = run(false);
    let (traced_end, recorded) = run(true);
    assert!(recorded > 0, "the traced run actually recorded events");
    assert_eq!(
        untraced_end, traced_end,
        "tracing must not move the virtual clock on the bypass path"
    );
}

#[test]
fn flight_recorder_captures_failed_send_tail() {
    let (world, _server, client) = ucr_world(63);
    let sim = world.sim().clone();
    let tracer = world.cluster.tracer().clone();
    sim.block_on(async move {
        client.set(b"k", b"v", 0, 0).await.unwrap();
        client.get(b"k").await.unwrap().unwrap();

        // Kill the server's HCA: the next send exhausts RC retries, the
        // completion carries an error, and UCR fails the endpoint.
        world.crash_node(NodeId(0));
        assert!(client.get(b"k").await.is_err());

        assert!(tracer.fault_count() >= 1, "endpoint failure raised a fault");
        let dump = tracer.last_fault().expect("fault dump stored");
        assert!(dump.contains("failed"), "dump names the failure: {dump}");

        // The ring's tail holds the failed send's QP-level story: the
        // posted send, its error completion, the closed span, and the
        // endpoint teardown — in virtual-time order.
        let flight = tracer.flight_snapshot();
        let err_idx = flight
            .iter()
            .rposition(|ev| ev.name == "wc_error")
            .expect("error completion in the flight ring");
        let wr = flight[err_idx].op;
        let story: Vec<_> = flight.iter().filter(|ev| ev.op == wr).collect();
        assert!(
            story
                .iter()
                .any(|ev| ev.name == "send" && ev.phase == Phase::Begin),
            "the failed send's post is in the ring"
        );
        assert!(
            story
                .iter()
                .any(|ev| ev.name == "send" && ev.phase == Phase::End),
            "the failed send's (error) completion closes its span"
        );
        assert!(
            story.windows(2).all(|w| w[0].at <= w[1].at),
            "the failed send's events are in virtual-time order"
        );
        assert!(
            flight[err_idx..]
                .iter()
                .any(|ev| ev.layer == Layer::Ucr && ev.name == "ep_failed"),
            "the endpoint failure marker follows the error completion"
        );
    });
}

#[test]
fn stats_trace_and_per_op_histograms_surface_through_protocol() {
    let (world, _server, client) = ucr_world(64);
    let sim = world.sim().clone();
    sim.block_on(async move {
        client.set(b"k", &[1u8; 128], 0, 0).await.unwrap();
        for _ in 0..5 {
            client.get(b"k").await.unwrap().unwrap();
        }

        // `stats trace`: per-layer event counts plus flight-ring state.
        let trace_stats = client.stats_report("trace").await.unwrap();
        let lookup = |key: &str| {
            trace_stats
                .iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("missing {key}"))
                .1
                .clone()
        };
        for layer in ["wire", "verbs", "ucr", "core"] {
            let n: u64 = lookup(&format!("trace.events.{layer}")).parse().unwrap();
            assert!(n > 0, "layer {layer} has emitted events");
        }
        assert!(lookup("trace.flight.len").parse::<u64>().unwrap() > 0);

        // The plain `stats` report carries per-op service-time summaries.
        let stats = client.stats().await.unwrap();
        let get_mean: f64 = stats
            .iter()
            .find(|(k, _)| k == "op.get.service_us.mean")
            .expect("per-op get histogram")
            .1
            .parse()
            .unwrap();
        assert!(get_mean > 0.0);
        let get_count: u64 = stats
            .iter()
            .find(|(k, _)| k == "op.get.count")
            .expect("per-op get count")
            .1
            .parse()
            .unwrap();
        assert!(get_count >= 5);
    });
}
