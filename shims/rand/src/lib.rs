//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the few entry points it actually uses: a seedable
//! deterministic generator (`rngs::StdRng`), the `Rng`/`RngCore`/
//! `SeedableRng` traits, and uniform sampling over integer and float
//! ranges. The generator is xoshiro256++ seeded via SplitMix64 — not the
//! same stream as upstream `StdRng` (ChaCha12), but the workspace only
//! relies on determinism per seed, never on a specific stream.

use std::ops::Range;

/// Core random-number generation: raw bits and byte filling.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Types with a "standard" distribution (`rng.gen::<T>()`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Unbiased integer sampling in `[0, n)` by widening multiply with
/// rejection (Lemire's method).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let lo = m as u64;
        if lo >= n || lo >= (u64::MAX - n + 1) % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        let v = lo + u * (hi - lo);
        // Floating rounding can land exactly on `hi`; clamp back inside.
        if v >= hi {
            hi - (hi - lo) * f64::EPSILON
        } else {
            v
        }
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator: xoshiro256++ with SplitMix64
    /// seed expansion. Statistically strong and fast; not cryptographic,
    /// which matches how the workspace uses it (simulation workloads).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let g = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(g > 0.0 && g < 1.0);
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
