//! Offline stand-in for `criterion`.
//!
//! Implements the small API surface the workspace benches use —
//! `Criterion::benchmark_group`, `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, `Bencher::{iter, iter_custom}`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros.
//! Instead of criterion's statistical machinery it takes `sample_size`
//! timed samples of each benchmark (after one warmup run) and prints
//! mean/min per iteration, which is enough to compare hot paths and
//! catch gross regressions in the simulation harness offline.

use std::fmt;
use std::time::{Duration, Instant};

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            sample_size: 10,
            per_sample_iters: 1,
        }
    }
}

/// Throughput annotation; recorded for API compatibility, displayed as
/// elements/bytes per second alongside the timing line when set.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkGroup {
    sample_size: usize,
    per_sample_iters: u64,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}

    fn run(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters: self.per_sample_iters,
            elapsed: Duration::ZERO,
        };
        // Warmup sample, then timed samples.
        f(&mut bencher);
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut iters_done = 0u64;
        for _ in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            let per_iter = bencher.elapsed / bencher.iters.max(1) as u32;
            total += bencher.elapsed;
            iters_done += bencher.iters;
            min = min.min(per_iter);
        }
        let mean = total / iters_done.max(1) as u32;
        println!("  {name}: mean {mean:?}/iter, min {min:?}/iter ({iters_done} iters)");
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &n| b.iter(|| n * n));
        g.bench_with_input(BenchmarkId::from_parameter(2), &2u64, |b, &n| {
            b.iter_custom(|iters| {
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(n + 1);
                }
                start.elapsed()
            })
        });
        g.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn harness_runs() {
        smoke();
    }
}
