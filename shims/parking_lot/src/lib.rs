//! Offline stand-in for `parking_lot`: the `Mutex`/`RwLock` subset the
//! workspace uses, implemented over `std::sync`. Like parking_lot (and
//! unlike raw std), `lock()` returns the guard directly with no poison
//! `Result`; a poisoned std lock is recovered into its inner guard, which
//! matches parking_lot's no-poisoning semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
