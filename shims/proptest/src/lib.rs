//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of proptest's API the workspace's property tests use:
//! strategies over integer ranges, `any::<T>()`, `Just`, tuples,
//! `prop_map`, `prop_oneof!`, `collection::vec`, `option::of`, and the
//! `proptest!` / `prop_assert*` macros. Differences from upstream:
//!
//! - **No shrinking.** A failing case reports its inputs via panic
//!   message (the `Debug` of each argument) but is not minimized.
//! - **Deterministic seeding.** Each test derives its RNG seed from the
//!   test function's name, so failures reproduce exactly on re-run.
//! - Default case count is 64 (upstream: 256) to keep simulation-heavy
//!   suites fast; override per-block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`.

use std::marker::PhantomData;
use std::ops::Range;

/// Per-block configuration, selected with `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Small fast RNG (xoshiro256++) used to drive generation. Seeded from
/// the test name so runs are reproducible without any persisted state.
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h)
    }

    pub fn from_seed(seed: u64) -> TestRng {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        // Widening-multiply rejection sampling (unbiased).
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n || lo >= (u64::MAX - n + 1) % n {
                return (m >> 64) as u64;
            }
        }
    }
}

/// A generator of random values. Unlike upstream there is no value tree
/// or shrinking; `generate` directly yields a value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a default "arbitrary" distribution, for `any::<T>()`.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident/$idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A / 0);
impl_strategy_for_tuple!(A / 0, B / 1);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

/// Length specification accepted by [`collection::vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(strategy, len_range)`: a vector whose length is uniform in
    /// the range and whose elements come from `strategy`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `of(strategy)`: `None` or `Some(value)` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Uniform choice among strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} at {}:{}", ::std::stringify!($cond), ::std::file!(), ::std::line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} ({}) at {}:{}",
                ::std::stringify!($cond), ::std::format!($($fmt)+), ::std::file!(), ::std::line!()
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n at {}:{}",
                ::std::stringify!($left), ::std::stringify!($right), l, r, ::std::file!(), ::std::line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}\n at {}:{}",
                ::std::stringify!($left), ::std::stringify!($right), ::std::format!($($fmt)+),
                l, r, ::std::file!(), ::std::line!()
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}\n at {}:{}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l,
                ::std::file!(),
                ::std::line!()
            ));
        }
    }};
}

/// The `proptest!` block: declares test functions whose arguments are
/// drawn from strategies. Each function runs `config.cases` random
/// cases; a failed `prop_assert*` panics with the case inputs included.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategies = ($($strat,)+);
            let mut __rng = $crate::TestRng::from_name(::std::stringify!($name));
            for __case in 0..__config.cases {
                let ($($arg,)+) = $crate::Strategy::generate(&__strategies, &mut __rng);
                let __inputs = ::std::format!(
                    ::std::concat!($(::std::stringify!($arg), " = {:?} ",)+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__msg) = __result {
                    ::std::panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1, __config.cases, __msg, __inputs
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Item {
        Num(u64),
        Flag(bool),
        Pair(u8, u8),
    }

    fn item_strategy() -> impl Strategy<Value = Item> {
        prop_oneof![
            any::<u64>().prop_map(Item::Num),
            any::<bool>().prop_map(Item::Flag),
            (0u8..10, 10u8..20).prop_map(|(a, b)| Item::Pair(a, b)),
            Just(Item::Num(42)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_in_bounds(x in 5u64..10, v in crate::collection::vec(0u8..3, 2..6)) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|&b| b < 3));
        }

        #[test]
        fn oneof_and_map_cover_arms(item in item_strategy()) {
            match item {
                Item::Pair(a, b) => {
                    prop_assert!(a < 10);
                    prop_assert!((10..20).contains(&b));
                }
                Item::Num(_) | Item::Flag(_) => {}
            }
        }

        #[test]
        fn option_of_yields_both(o in crate::option::of(0u32..5)) {
            if let Some(v) = o {
                prop_assert!(v < 5);
            }
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_assert_panics_with_inputs() {
        proptest! {
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
