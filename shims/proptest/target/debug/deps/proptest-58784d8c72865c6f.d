/root/repo/crates/shims/proptest/target/debug/deps/proptest-58784d8c72865c6f.d: src/lib.rs

/root/repo/crates/shims/proptest/target/debug/deps/libproptest-58784d8c72865c6f.rlib: src/lib.rs

/root/repo/crates/shims/proptest/target/debug/deps/libproptest-58784d8c72865c6f.rmeta: src/lib.rs

src/lib.rs:
