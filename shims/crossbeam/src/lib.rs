//! Offline stand-in for `crossbeam`: just `crossbeam::scope`, built on
//! `std::thread::scope` (stable since 1.63, well under this workspace's
//! MSRV). The closure passed to `spawn` receives a `&Scope` exactly like
//! crossbeam's, so call sites (`scope.spawn(move |_| ...)`) compile
//! unchanged, and a panic in any spawned thread surfaces as `Err` from
//! `scope` rather than a propagated panic.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::ScopedJoinHandle;

/// Scope handle passed to `scope` and to every spawned closure.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Runs `f` with a scope in which threads borrowing from the environment
/// can be spawned; joins them all before returning. Returns `Err` with
/// the panic payload if the closure or any spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn spawned_threads_share_borrows() {
        let total = AtomicU64::new(0);
        super::scope(|scope| {
            for _ in 0..4 {
                let total = &total;
                scope.spawn(move |_| {
                    for _ in 0..1000 {
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn panic_in_thread_is_err() {
        let result = super::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = AtomicU64::new(0);
        super::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
