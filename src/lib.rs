//! # rdma-memcached — facade crate
//!
//! Re-exports the whole workspace of the ICPP 2011 reproduction
//! (*"Memcached Design on High Performance RDMA Capable Interconnects"*,
//! Jose et al.) so examples and integration tests can reach every layer
//! through one dependency:
//!
//! * [`simnet`] — deterministic discrete-event cluster simulation,
//! * [`verbs`] — InfiniBand-verbs-like API (QPs, CQs, MRs, RDMA, CM),
//! * [`socksim`] — the byte-stream baseline transports + UDP datagrams,
//! * [`ucr`] — the paper's Unified Communication Runtime (§IV),
//! * [`mcstore`] — the memcached storage engine (slabs, LRU, CAS),
//! * [`mcproto`] — the ASCII, binary, and UDP wire protocols,
//! * [`rmc`] — the RDMA-capable Memcached server and client (§V).
//!
//! Start with [`rmc::World`], [`rmc::McServer`], and [`rmc::McClient`];
//! see `examples/quickstart.rs`.

pub use {mcproto, mcstore, rmc, simnet, socksim, ucr, verbs};
