//! Fault tolerance: one Memcached server dies mid-workload; the client's
//! counter wait times out (UCR's synchronization-with-timeout, paper
//! §IV-A), the client drops the dead server from its pool, and the
//! surviving deployment keeps serving — one failing process must not fail
//! the others, unlike an MPI job.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use rdma_memcached::rmc::{
    Distribution, McClient, McClientConfig, McError, McServer, McServerConfig, Transport, World,
};
use rdma_memcached::simnet::{NodeId, SimDuration};

fn main() {
    let world = World::cluster_a(5, 6);
    let server_a = McServer::start(&world, NodeId(0), McServerConfig::default());
    let _server_b = McServer::start(&world, NodeId(1), McServerConfig::default());

    let pool = McClientConfig {
        transport: Transport::Ucr,
        servers: vec![NodeId(0), NodeId(1)],
        port: 11211,
        op_timeout: SimDuration::from_millis(5),
        distribution: Distribution::Ketama,
        ..McClientConfig::single(Transport::Ucr, NodeId(0))
    };
    let client = McClient::new(&world, NodeId(2), pool);

    let sim = world.sim().clone();
    let sim2 = sim.clone();
    sim.block_on(async move {
        // Populate across both servers.
        let keys: Vec<String> = (0..40).map(|i| format!("session:{i}")).collect();
        for k in &keys {
            client.set(k.as_bytes(), b"state", 0, 0).await.unwrap();
        }
        println!("populated {} keys across 2 servers", keys.len());

        // Server 0 crashes.
        server_a.shutdown();
        world.crash_node(NodeId(0));
        println!("server node0 crashed");

        // Sweep the keys: those on the dead server time out, the rest
        // keep answering — fault isolation in action.
        let mut ok = 0;
        let mut dead = 0;
        for k in &keys {
            match client.get(k.as_bytes()).await {
                Ok(Some(_)) => ok += 1,
                Ok(None) => {}
                Err(McError::Timeout) | Err(McError::Disconnected) => dead += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        println!("after crash: {ok} keys still served, {dead} timed out (<=5 ms each)");
        assert!(ok > 0 && dead > 0);

        // Corrective action (paper §IV-A: "a client may decide that a
        // server has gone down"): rebuild the pool without the dead node.
        let survivor = McClient::new(
            &world,
            NodeId(3),
            McClientConfig {
                transport: Transport::Ucr,
                servers: vec![NodeId(1)],
                port: 11211,
                op_timeout: SimDuration::from_millis(5),
                distribution: Distribution::Ketama,
                ..McClientConfig::single(Transport::Ucr, NodeId(1))
            },
        );
        let mut recovered = 0;
        for k in &keys {
            // Keys that lived on the dead server are cache misses now;
            // re-populate them on the survivor (cache-aside refill).
            if survivor.get(k.as_bytes()).await.unwrap().is_none() {
                survivor.set(k.as_bytes(), b"state", 0, 0).await.unwrap();
                recovered += 1;
            }
        }
        println!("re-populated {recovered} keys on the surviving server");

        // Full service restored.
        for k in &keys {
            assert!(survivor.get(k.as_bytes()).await.unwrap().is_some());
        }
        println!("all {} keys served again at {}", keys.len(), sim2.now());
    });
}
