//! memcachefs — a tiny filesystem over Memcached.
//!
//! The paper's introduction names "distributed file systems, such as
//! memcachefs" among Memcached's adopters (§I, ref [1]). This example
//! builds that shape: a block-store filesystem whose superblock, inodes,
//! and data blocks are all Memcached items, running over UCR. Atomic
//! directory updates use CAS; large files fan out over 4 KB blocks (each
//! a single RDMA-path get at the paper's headline message size).
//!
//! ```text
//! cargo run --release --example memcachefs
//! ```

use rdma_memcached::rmc::{McClient, McClientConfig, McServer, McServerConfig, Transport, World};
use rdma_memcached::simnet::NodeId;

const BLOCK: usize = 4096;

/// Minimal filesystem facade over a Memcached client.
struct McFs {
    mc: McClient,
}

impl McFs {
    /// Formats the filesystem (creates an empty root directory).
    async fn format(&self) {
        self.mc.set(b"fs:/", b"", 0, 0).await.expect("format");
    }

    /// Writes a file: data blocks `fs:<path>:<n>`, then an inode with the
    /// length, then a CAS-protected directory entry append.
    async fn write(&self, path: &str, data: &[u8]) {
        for (n, chunk) in data.chunks(BLOCK).enumerate() {
            let key = format!("fs:{path}:{n}");
            self.mc
                .set(key.as_bytes(), chunk, 0, 0)
                .await
                .expect("block");
        }
        let inode = format!("len={}", data.len());
        let ikey = format!("fs:{path}");
        self.mc
            .set(ikey.as_bytes(), inode.as_bytes(), 0, 0)
            .await
            .expect("inode");

        // Directory update with optimistic concurrency: retry on CAS
        // conflict, so two writers cannot lose each other's entries.
        loop {
            let dir = self.mc.get(b"fs:/").await.expect("dir").expect("formatted");
            let listing = String::from_utf8_lossy(&dir.data).into_owned();
            if listing.split('\n').any(|e| e == path) {
                break;
            }
            let new_listing = if listing.is_empty() {
                path.to_string()
            } else {
                format!("{listing}\n{path}")
            };
            match self
                .mc
                .cas(b"fs:/", new_listing.as_bytes(), 0, 0, dir.cas)
                .await
            {
                Ok(()) => break,
                Err(rdma_memcached::rmc::McError::Exists) => continue, // raced; retry
                Err(e) => panic!("dir update failed: {e}"),
            }
        }
    }

    /// Reads a whole file back via its inode + blocks (batched mget).
    async fn read(&self, path: &str) -> Option<Vec<u8>> {
        let ikey = format!("fs:{path}");
        let inode = self.mc.get(ikey.as_bytes()).await.expect("inode get")?;
        let text = String::from_utf8_lossy(&inode.data).into_owned();
        let len: usize = text.strip_prefix("len=")?.parse().ok()?;
        let nblocks = len.div_ceil(BLOCK).max(1);
        let keys: Vec<String> = (0..nblocks).map(|n| format!("fs:{path}:{n}")).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
        let mut blocks = self.mc.mget(&refs).await.expect("blocks");
        blocks.sort_by_key(|(k, _)| {
            String::from_utf8_lossy(k)
                .rsplit(':')
                .next()
                .and_then(|n| n.parse::<usize>().ok())
                .unwrap_or(0)
        });
        let mut out = Vec::with_capacity(len);
        for (_, v) in blocks {
            out.extend_from_slice(&v.data);
        }
        out.truncate(len);
        Some(out)
    }

    /// Lists the root directory.
    async fn ls(&self) -> Vec<String> {
        let dir = self.mc.get(b"fs:/").await.expect("dir").expect("formatted");
        String::from_utf8_lossy(&dir.data)
            .split('\n')
            .filter(|e| !e.is_empty())
            .map(str::to_string)
            .collect()
    }
}

fn main() {
    let world = World::cluster_b(77, 4);
    let _server = McServer::start(&world, NodeId(0), McServerConfig::default());
    let fs = McFs {
        mc: McClient::new(
            &world,
            NodeId(1),
            McClientConfig::single(Transport::Ucr, NodeId(0)),
        ),
    };
    let sim = world.sim().clone();
    let sim2 = sim.clone();
    sim.block_on(async move {
        fs.format().await;

        let readme = b"memcachefs: a filesystem made of cache entries".to_vec();
        let big: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        fs.write("README", &readme).await;
        fs.write("data.bin", &big).await;

        println!("ls /          -> {:?}", fs.ls().await);

        let t0 = sim2.now();
        let back = fs.read("data.bin").await.unwrap();
        let dt = sim2.now() - t0;
        assert_eq!(back, big);
        println!(
            "read data.bin -> {} bytes in {dt} ({} blocks over UCR mget)",
            back.len(),
            big.len().div_ceil(BLOCK)
        );
        let small = fs.read("README").await.unwrap();
        println!("read README   -> {:?}", String::from_utf8_lossy(&small));
        assert!(fs.read("missing").await.is_none());
        println!("read missing  -> None (clean miss)");
    });
}
