//! Social-network feed caching — the workload that motivated Memcached's
//! heaviest deployments (paper §I: social networks generating dynamic
//! data; Facebook's 800-server Memcached tier).
//!
//! A feed service renders timelines by fetching the latest post of each
//! friend. Posts live in a "database" with millisecond lookups; Memcached
//! in front absorbs the read traffic (cache-aside). The example measures
//! feed-render latency with a cold cache, a warm cache over UCR, and a
//! warm cache over IPoIB — showing both the caching win and the
//! interconnect win the paper quantifies.
//!
//! ```text
//! cargo run --release --example social_feed
//! ```

use rdma_memcached::rmc::{McClient, McClientConfig, McServer, McServerConfig, Transport, World};
use rdma_memcached::simnet::{NodeId, Sim, SimDuration, Stack};

/// Simulated database: a primary-key lookup costs ~1.5 ms (B-tree walk,
/// buffer pool, SQL layer) — the expense the paper says caching must keep
/// off the critical path (§I).
async fn db_lookup(sim: &Sim, user: u32) -> Vec<u8> {
    sim.sleep(SimDuration::from_micros(1500)).await;
    format!("{{\"user\":{user},\"post\":\"latest post of {user}\"}}").into_bytes()
}

async fn render_feed(
    sim: &Sim,
    cache: &McClient,
    friends: &[u32],
) -> (Vec<Vec<u8>>, u32 /* db hits */) {
    let mut feed = Vec::new();
    let mut db_hits = 0;
    for &friend in friends {
        let key = format!("post:{friend}");
        match cache.get(key.as_bytes()).await.expect("cache reachable") {
            Some(v) => feed.push(v.data),
            None => {
                let row = db_lookup(sim, friend).await;
                // 60 s TTL: posts churn.
                let _ = cache.set(key.as_bytes(), &row, 0, 60).await;
                feed.push(row);
                db_hits += 1;
            }
        }
    }
    (feed, db_hits)
}

fn main() {
    let world = World::cluster_b(7, 4);
    let _server = McServer::start(&world, NodeId(0), McServerConfig::default());
    let ucr_cache = McClient::new(
        &world,
        NodeId(1),
        McClientConfig::single(Transport::Ucr, NodeId(0)),
    );
    let ipoib_cache = McClient::new(
        &world,
        NodeId(2),
        McClientConfig::single(Transport::Sockets(Stack::Ipoib), NodeId(0)),
    );

    let sim = world.sim().clone();
    let sim2 = sim.clone();
    sim.block_on(async move {
        let friends: Vec<u32> = (100..150).collect();

        // Cold cache: every friend costs a database round trip.
        let t0 = sim2.now();
        let (feed, db_hits) = render_feed(&sim2, &ucr_cache, &friends).await;
        let cold = sim2.now() - t0;
        println!(
            "cold cache : feed of {} posts in {cold} ({db_hits} DB lookups)",
            feed.len()
        );

        // Warm cache over UCR: pure RDMA-path gets.
        let t0 = sim2.now();
        let (_, db_hits) = render_feed(&sim2, &ucr_cache, &friends).await;
        let warm_ucr = sim2.now() - t0;
        println!("warm / UCR : feed in {warm_ucr} ({db_hits} DB lookups)");

        // Warm cache over IPoIB: same data, sockets interconnect.
        let t0 = sim2.now();
        let (_, db_hits) = render_feed(&sim2, &ipoib_cache, &friends).await;
        let warm_ipoib = sim2.now() - t0;
        println!("warm / IPoIB: feed in {warm_ipoib} ({db_hits} DB lookups)");

        // Batched render: one mget per feed instead of 50 gets.
        let keys: Vec<String> = friends.iter().map(|f| format!("post:{f}")).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
        let t0 = sim2.now();
        let hits = ucr_cache.mget(&refs).await.expect("mget");
        let batched = sim2.now() - t0;
        println!(
            "warm / UCR mget: {} posts in one request, {batched}",
            hits.len()
        );

        let speedup_cache = cold.as_micros_f64() / warm_ucr.as_micros_f64();
        let speedup_net = warm_ipoib.as_micros_f64() / warm_ucr.as_micros_f64();
        println!("\ncaching win: {speedup_cache:.0}x over the database");
        println!("interconnect win: {speedup_net:.1}x UCR over IPoIB (paper: 5-10x)");
    });
}
