//! Quickstart: bring up a simulated QDR InfiniBand cluster, start an
//! RDMA-capable Memcached server, and run set/get over UCR.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rdma_memcached::rmc::{McClient, McClientConfig, McServer, McServerConfig, Transport, World};
use rdma_memcached::simnet::NodeId;

fn main() {
    // Cluster B of the paper: Westmere nodes with ConnectX QDR adapters.
    let world = World::cluster_b(42, 4);
    let server = McServer::start(&world, NodeId(0), McServerConfig::default());
    let client = McClient::new(
        &world,
        NodeId(1),
        McClientConfig::single(Transport::Ucr, NodeId(0)),
    );

    let sim = world.sim().clone();
    let sim2 = sim.clone();
    sim.block_on(async move {
        client
            .set(b"user:1001", b"{\"name\":\"arthur\",\"karma\":42}", 0, 0)
            .await
            .expect("set");

        let t0 = sim2.now();
        let value = client.get(b"user:1001").await.expect("get").expect("hit");
        let latency = sim2.now() - t0;

        println!("get user:1001 -> {}", String::from_utf8_lossy(&value.data));
        println!("latency: {latency} (simulated, UCR over QDR InfiniBand)");

        // A 4 KB value: the headline measurement of the paper (~12 us).
        client
            .set(b"page:home", &vec![7u8; 4096], 0, 0)
            .await
            .expect("set");
        client.get(b"page:home").await.expect("warm").expect("hit");
        let t0 = sim2.now();
        client.get(b"page:home").await.expect("get").expect("hit");
        println!(
            "4 KB get latency: {} (paper reports ~12 us on QDR)",
            sim2.now() - t0
        );
    });

    println!(
        "server stats: {} items, {} UCR requests served",
        server.curr_items(),
        server.stats().ucr_requests.get()
    );
}
