//! Transport shootout: the same Memcached workload over all five network
//! stacks of the paper's evaluation, side by side, on Cluster A — a
//! miniature of Figure 3(c) plus throughput.
//!
//! ```text
//! cargo run --release --example transport_shootout
//! ```

use rdma_memcached::rmc::{McClient, McClientConfig, McServer, McServerConfig, Transport, World};
use rdma_memcached::simnet::{NodeId, Stack};

fn main() {
    let transports = [
        Transport::Ucr,
        Transport::Sockets(Stack::Sdp),
        Transport::Sockets(Stack::Ipoib),
        Transport::Sockets(Stack::TenGigEToe),
        Transport::Sockets(Stack::OneGigE),
    ];

    println!("Cluster A (ConnectX DDR + Chelsio 10GigE-TOE + 1GigE)");
    println!(
        "{:>12}{:>14}{:>14}{:>16}",
        "transport", "get 64B (us)", "get 4KB (us)", "gets/sec (1 cli)"
    );

    for transport in transports {
        // Fresh world per transport so measurements do not share state.
        let world = World::cluster_a(9, 4);
        let _server = McServer::start(&world, NodeId(0), McServerConfig::default());
        let client = McClient::new(
            &world,
            NodeId(1),
            McClientConfig::single(transport, NodeId(0)),
        );
        let sim = world.sim().clone();
        let sim2 = sim.clone();
        let (small, large, rate) = sim.block_on(async move {
            client.set(b"s", &[1u8; 64], 0, 0).await.unwrap();
            client.set(b"l", &vec![1u8; 4096], 0, 0).await.unwrap();
            client.get(b"s").await.unwrap(); // warm
            client.get(b"l").await.unwrap();

            let iters = 100u32;
            let t0 = sim2.now();
            for _ in 0..iters {
                client.get(b"s").await.unwrap().unwrap();
            }
            let small = (sim2.now() - t0).as_micros_f64() / iters as f64;

            let t0 = sim2.now();
            for _ in 0..iters {
                client.get(b"l").await.unwrap().unwrap();
            }
            let large = (sim2.now() - t0).as_micros_f64() / iters as f64;

            (small, large, 1_000_000.0 / small)
        });
        println!(
            "{:>12}{small:>14.1}{large:>14.1}{rate:>16.0}",
            transport.label()
        );
    }

    println!("\n(The paper's headline: UCR beats 10GigE-TOE by >=4x and IPoIB/SDP");
    println!("by 5-10x across message sizes; 4 KB get ~20 us on these DDR HCAs.)");
}
