//! PGAS-style one-sided communication over UCR.
//!
//! UCR's goal is to serve *both* worlds: data-center middleware like
//! Memcached and parallel programming models like UPC (paper §I, §IV).
//! This example uses the §IV-B one-sided put/get interface directly: a
//! set of worker processes expose shards of a global array; a driver
//! reads and writes them with zero remote CPU involvement — no handler
//! runs on the workers after setup, yet their memory is fully accessible.
//!
//! ```text
//! cargo run --release --example pgas_onesided
//! ```

use rdma_memcached::simnet::{Cluster, NodeId, SimDuration};
use rdma_memcached::ucr::{AmData, Endpoint, FnHandler, SendOptions, UcrRuntime};
use rdma_memcached::verbs::IbFabric;
use std::cell::RefCell;
use std::rc::Rc;

const DESC_XCHG: u16 = 40;
const SHARD_ELEMS: usize = 1024; // u64s per worker

fn main() {
    let workers = 4u32;
    let cluster = Rc::new(Cluster::cluster_b(3, workers + 1));
    let fabric = IbFabric::new(cluster.clone());
    let sim = cluster.sim().clone();

    // Workers: register a shard, then answer exactly one active message —
    // the descriptor exchange. After that, all access is one-sided.
    let mut worker_runtimes = Vec::new();
    for w in 1..=workers {
        let rt = UcrRuntime::new(&fabric, NodeId(w));
        // lint:allow(R7) PGAS shards are program-lifetime: pinned until the example exits
        let shard = Rc::new(rt.register_memory(SHARD_ELEMS * 8));
        // Initialize shard: element i = w * 1_000_000 + i.
        for i in 0..SHARD_ELEMS {
            shard.write(i * 8, &((w as u64) * 1_000_000 + i as u64).to_le_bytes());
        }
        let shard2 = shard.clone();
        rt.register_handler(
            DESC_XCHG,
            FnHandler(move |ep: &Endpoint, hdr: &[u8], _: AmData| {
                let ctr = u64::from_le_bytes(hdr[..8].try_into().unwrap());
                let d = shard2.descriptor(0, SHARD_ELEMS * 8);
                let mut reply = Vec::new();
                reply.extend_from_slice(&d.rkey.to_le_bytes());
                reply.extend_from_slice(&d.offset.to_le_bytes());
                reply.extend_from_slice(&d.len.to_le_bytes());
                ep.post_message(
                    DESC_XCHG + 1,
                    Vec::new(),
                    reply,
                    SendOptions {
                        target_ctr: ctr,
                        ..Default::default()
                    },
                );
            }),
        );
        let listener = rt.listen(9100).unwrap();
        sim.spawn(async move {
            let _ = listener.accept().await;
        });
        worker_runtimes.push((rt, shard));
    }

    // Driver: connect to every worker, learn shard descriptors, then do a
    // global reduction (sum of all elements) purely with one-sided gets,
    // and a global update purely with puts.
    let driver = UcrRuntime::new(&fabric, NodeId(0));
    let descs: Rc<RefCell<Vec<Vec<u8>>>> = Rc::new(RefCell::new(Vec::new()));
    let descs2 = descs.clone();
    driver.register_handler(
        DESC_XCHG + 1,
        FnHandler(move |_: &Endpoint, _: &[u8], data: AmData| {
            descs2.borrow_mut().push(data.into_vec().unwrap());
        }),
    );

    let driver2 = driver.clone();
    let sim2 = sim.clone();
    sim.block_on(async move {
        let mut eps = Vec::new();
        for w in 1..=workers {
            let ep = driver2
                .connect(NodeId(w), 9100, SimDuration::from_millis(100))
                .await
                .unwrap();
            let ctr = driver2.counter();
            ep.send_message(DESC_XCHG, &ctr.id().to_le_bytes(), &[], SendOptions::default())
                .await
                .unwrap();
            ctr.wait_for(1, SimDuration::from_millis(100)).await.unwrap();
            eps.push(ep);
        }
        let descriptors: Vec<rdma_memcached::ucr::MemoryDescriptor> = {
            let raw = descs.borrow();
            raw.iter()
                .zip(1..=workers)
                .map(|(b, w)| rdma_memcached::ucr::MemoryDescriptor {
                    node: NodeId(w),
                    rkey: u32::from_le_bytes(b[0..4].try_into().unwrap()),
                    offset: u64::from_le_bytes(b[4..12].try_into().unwrap()),
                    len: u64::from_le_bytes(b[12..20].try_into().unwrap()),
                })
                .collect()
        };
        println!("descriptor exchange complete for {} shards", descriptors.len());

        // Global read: gather every shard concurrently with one-sided gets.
        let local = driver2.register_memory(workers as usize * SHARD_ELEMS * 8);
        let done = driver2.counter();
        let t0 = sim2.now();
        for (i, (ep, d)) in eps.iter().zip(&descriptors).enumerate() {
            ep.get(&local, i * SHARD_ELEMS * 8, *d, Some(done.clone())).unwrap();
        }
        done.wait_for(workers as u64, SimDuration::from_millis(100))
            .await
            .unwrap();
        let gather_time = sim2.now() - t0;

        let mut sum = 0u64;
        for i in 0..(workers as usize * SHARD_ELEMS) {
            sum += u64::from_le_bytes(local.read(i * 8, 8).try_into().unwrap());
        }
        let expect: u64 = (1..=workers as u64)
            .map(|w| (0..SHARD_ELEMS as u64).map(|i| w * 1_000_000 + i).sum::<u64>())
            .sum();
        assert_eq!(sum, expect);
        println!(
            "one-sided gather of {} KiB from {workers} workers in {gather_time}; global sum = {sum}",
            workers as usize * SHARD_ELEMS * 8 / 1024
        );

        // Global write: zero element 0 of every shard with one-sided puts.
        let done = driver2.counter();
        for (ep, d) in eps.iter().zip(&descriptors) {
            let head = rdma_memcached::ucr::MemoryDescriptor { len: 8, ..*d };
            ep.put(head, &0u64.to_le_bytes(), Some(done.clone())).unwrap();
        }
        done.wait_for(workers as u64, SimDuration::from_millis(100))
            .await
            .unwrap();
        println!("one-sided scatter complete (element 0 zeroed on every worker)");
    });

    // Verify the puts landed — reading worker memory directly.
    for (w, (_, shard)) in worker_runtimes.iter().enumerate() {
        let head = u64::from_le_bytes(shard.read(0, 8).try_into().unwrap());
        assert_eq!(head, 0, "worker {} element 0", w + 1);
        let second = u64::from_le_bytes(shard.read(8, 8).try_into().unwrap());
        assert_eq!(second, (w as u64 + 1) * 1_000_000 + 1);
    }
    println!("verified: remote puts visible in worker memory, neighbors untouched");
}
